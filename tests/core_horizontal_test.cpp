#include <gtest/gtest.h>

#include <cmath>

#include "core/kernel_horizontal.h"
#include "core/linear_horizontal.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "svm/metrics.h"
#include "svm/trainer.h"

namespace ppml::core {
namespace {

using data::Dataset;

/// Standardized cancer-like split shared by the tests (small but realistic).
data::SplitDataset cancer_split() {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  return split;
}

AdmmParams fast_params(std::size_t iterations = 40) {
  AdmmParams params;
  params.max_iterations = iterations;
  return params;
}

TEST(LinearHorizontal, ConvergesTowardCentralizedModel) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);

  AdmmParams params = fast_params(80);
  const auto result = train_linear_horizontal(partition, params, &split.test);

  svm::TrainOptions central_options;
  central_options.c = params.c;
  const auto central = svm::train_linear_svm(split.train, central_options);

  const double central_acc =
      svm::accuracy(central.predict_all(split.test.x), split.test.y);
  const double distributed_acc = result.trace.final_accuracy();
  // Lemma 4.1: the distributed optimum equals the centralized one, so after
  // enough iterations accuracy must be within a couple of points.
  EXPECT_GE(distributed_acc, central_acc - 0.03);

  // The consensus direction should align with the centralized w.
  double dot = 0.0;
  double n1 = 0.0;
  double n2 = 0.0;
  for (std::size_t j = 0; j < central.w.size(); ++j) {
    dot += central.w[j] * result.model.w[j];
    n1 += central.w[j] * central.w[j];
    n2 += result.model.w[j] * result.model.w[j];
  }
  EXPECT_GT(dot / std::sqrt(n1 * n2), 0.95);
}

TEST(LinearHorizontal, DeltaZDecreasesOverall) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto result =
      train_linear_horizontal(partition, fast_params(50), nullptr);
  ASSERT_EQ(result.trace.records.size(), 50u);
  const double early = result.trace.records[1].z_delta_sq;
  const double late = result.trace.records[49].z_delta_sq;
  EXPECT_LT(late, early * 1e-1);  // Fig. 4(a): steady decay
}

TEST(LinearHorizontal, FactoredDualMatchesDenseDualClosely) {
  // Forcing every shard onto the matrix-free FactoredBoxQpSolver (as a
  // HIGGS-scale shard would be) must reproduce the dense-Q model to within
  // solver tolerance — deterministic, but not bit-identical by design.
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);

  AdmmParams dense = fast_params(30);
  AdmmParams factored = fast_params(30);
  factored.dense_q_row_limit = 0;  // every shard takes the implicit path

  const auto a = train_linear_horizontal(partition, dense, nullptr);
  const auto b = train_linear_horizontal(partition, factored, nullptr);
  for (std::size_t j = 0; j < a.model.w.size(); ++j)
    EXPECT_NEAR(a.model.w[j], b.model.w[j], 1e-3) << j;
  EXPECT_NEAR(a.model.b, b.model.b, 1e-3);
}

TEST(LinearHorizontal, LearnerPicksSolverByShardSize) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 2, 7);
  AdmmParams params = fast_params(5);
  const LinearHorizontalLearner dense(partition.shards[0], 2, params);
  EXPECT_FALSE(dense.uses_factored_qp());  // default limit is generous

  params.dense_q_row_limit = 1;
  const LinearHorizontalLearner factored(partition.shards[0], 2, params);
  EXPECT_TRUE(factored.uses_factored_qp());
}

TEST(LinearHorizontal, MaskVariantsProduceSameModel) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 3, 3);
  AdmmParams seeded = fast_params(15);
  seeded.mask_variant = crypto::MaskVariant::kSeededMasks;
  AdmmParams exchanged = fast_params(15);
  exchanged.mask_variant = crypto::MaskVariant::kExchangedMasks;

  const auto a = train_linear_horizontal(partition, seeded, nullptr);
  const auto b = train_linear_horizontal(partition, exchanged, nullptr);
  // Mask algebra cancels exactly in the ring; only fixed-point quantization
  // remains, identical for both variants.
  for (std::size_t j = 0; j < a.model.w.size(); ++j)
    EXPECT_NEAR(a.model.w[j], b.model.w[j], 1e-4);
  EXPECT_NEAR(a.model.b, b.model.b, 1e-4);
}

TEST(LinearHorizontal, SecureAveragingMatchesPlainAveraging) {
  // Train twice with different protocol seeds: the consensus trajectory
  // must be identical up to fixed-point quantization, proving the crypto
  // layer does not perturb learning.
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 1);
  AdmmParams pa = fast_params(10);
  pa.protocol_seed = 111;
  AdmmParams pb = fast_params(10);
  pb.protocol_seed = 222;
  const auto a = train_linear_horizontal(partition, pa, nullptr);
  const auto b = train_linear_horizontal(partition, pb, nullptr);
  for (std::size_t j = 0; j < a.model.w.size(); ++j)
    EXPECT_NEAR(a.model.w[j], b.model.w[j], 1e-4);
}

TEST(LinearHorizontal, MoreLearnersStillLearn) {
  const auto split = cancer_split();
  for (std::size_t m : {2, 8}) {
    const auto partition = data::partition_horizontally(split.train, m, 5);
    const auto result =
        train_linear_horizontal(partition, fast_params(60), &split.test);
    EXPECT_GE(result.trace.final_accuracy(), 0.85) << "M=" << m;
  }
}

TEST(LinearHorizontal, RejectsDegenerateInputs) {
  const auto split = cancer_split();
  data::HorizontalPartition partition =
      data::partition_horizontally(split.train, 4, 7);
  partition.shards.resize(1);
  EXPECT_THROW(train_linear_horizontal(partition, fast_params(), nullptr),
               InvalidArgument);

  AdmmParams bad;
  bad.c = -1.0;
  EXPECT_THROW(
      LinearHorizontalLearner(split.train, 4, bad), InvalidArgument);
}

TEST(LinearHorizontal, EarlyStopOnTolerance) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  AdmmParams params = fast_params(100);
  params.convergence_tolerance = 1e-4;
  const auto result = train_linear_horizontal(partition, params, nullptr);
  EXPECT_TRUE(result.run.converged);
  EXPECT_LT(result.run.iterations, 100u);
  EXPECT_LE(result.trace.final_delta_sq(), 1e-4);
}

TEST(AveragingCoordinatorTest, TracksDeltaOnWeightPartOnly) {
  AveragingCoordinator coordinator(3);  // 2 weights + bias
  coordinator.combine({1.0, 2.0, 100.0});
  EXPECT_DOUBLE_EQ(coordinator.last_delta_sq(), 5.0);  // bias ignored
  coordinator.combine({1.0, 2.0, -100.0});
  EXPECT_DOUBLE_EQ(coordinator.last_delta_sq(), 0.0);
  EXPECT_EQ(coordinator.z(), (Vector{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(coordinator.s(), -100.0);
  EXPECT_THROW(coordinator.combine({1.0}), InvalidArgument);
}

// ------------------------------------------------------------- kernel

TEST(KernelHorizontal, LearnsNonlinearTask) {
  // Rings are impossible for a linear separator; the distributed kernel
  // scheme must crack them.
  auto split =
      data::train_test_split(data::make_two_rings(400, 1.0, 3.0, 0.1, 3), 0.5, 9);
  const auto partition = data::partition_horizontally(split.train, 4, 11);

  AdmmParams params = fast_params(60);
  params.landmarks = 40;
  params.c = 10.0;
  params.rho = 1.0;
  const auto result = train_kernel_horizontal(
      partition, svm::Kernel::rbf(0.5), params, &split.test);
  EXPECT_GE(result.trace.final_accuracy(), 0.90);

  // Sanity: the linear scheme fails on the same data.
  const auto linear = train_linear_horizontal(partition, params, &split.test);
  EXPECT_LE(linear.trace.final_accuracy(), 0.75);
}

TEST(KernelHorizontal, ApproachesCentralizedKernelAccuracy) {
  auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  AdmmParams params = fast_params(60);
  params.landmarks = 60;
  params.rho = 1.0;
  const svm::Kernel kernel = svm::Kernel::rbf(0.1);
  const auto result =
      train_kernel_horizontal(partition, kernel, params, &split.test);

  svm::TrainOptions central_options;
  central_options.c = params.c;
  const auto central =
      svm::train_kernel_svm(split.train, kernel, central_options);
  const double central_acc =
      svm::accuracy(central.predict_all(split.test.x), split.test.y);
  EXPECT_GE(result.trace.final_accuracy(), central_acc - 0.05);
}

TEST(KernelHorizontal, ModelMatchesExpansionCoefficients) {
  auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 2, 7);
  AdmmParams params = fast_params(10);
  params.landmarks = 20;
  const svm::Kernel kernel = svm::Kernel::rbf(0.2);
  const auto result =
      train_kernel_horizontal(partition, kernel, params, nullptr);

  // The returned KernelModel must equal the traced expansion: re-predict a
  // few test rows both ways.
  const auto model = result.model;
  EXPECT_EQ(model.points.rows(),
            partition.shards.front().size() + params.landmarks);
  for (std::size_t i = 0; i < 5; ++i) {
    const double via_model = model.decision_value(split.test.x.row(i));
    EXPECT_TRUE(std::isfinite(via_model));
  }
}

TEST(KernelHorizontal, LandmarkCountTradesOffAccuracy) {
  auto split =
      data::train_test_split(data::make_two_rings(300, 1.0, 3.0, 0.1, 5), 0.5, 2);
  const auto partition = data::partition_horizontally(split.train, 3, 2);
  AdmmParams coarse = fast_params(40);
  coarse.landmarks = 3;
  coarse.c = 10.0;
  coarse.rho = 1.0;
  AdmmParams fine = coarse;
  fine.landmarks = 50;
  const auto lo = train_kernel_horizontal(partition, svm::Kernel::rbf(0.5),
                                          coarse, &split.test);
  const auto hi = train_kernel_horizontal(partition, svm::Kernel::rbf(0.5),
                                          fine, &split.test);
  EXPECT_GE(hi.trace.final_accuracy(), lo.trace.final_accuracy() - 0.02);
}

TEST(SampleLandmarks, StaysInBoundingBoxAndIsDeterministic) {
  linalg::Matrix reference{{0.0, 10.0}, {1.0, 20.0}, {0.5, 15.0}};
  const linalg::Matrix a = sample_landmarks(reference, 25, 3);
  const linalg::Matrix b = sample_landmarks(reference, 25, 3);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_GE(a(i, 0), 0.0);
    EXPECT_LE(a(i, 0), 1.0);
    EXPECT_GE(a(i, 1), 10.0);
    EXPECT_LE(a(i, 1), 20.0);
  }
  // Landmarks are uniform draws: none should coincide with a training row.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t r = 0; r < reference.rows(); ++r)
      EXPECT_FALSE(a(i, 0) == reference(r, 0) && a(i, 1) == reference(r, 1));
}

TEST(KernelHorizontal, RejectsMismatchedLandmarkWidth) {
  auto split = cancer_split();
  AdmmParams params = fast_params(5);
  EXPECT_THROW(KernelHorizontalLearner(split.train, linalg::Matrix(5, 2),
                                       svm::Kernel::rbf(0.1), 4, params),
               InvalidArgument);
}

}  // namespace
}  // namespace ppml::core
