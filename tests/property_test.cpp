// Property-based suites (TEST_P sweeps) on cross-cutting invariants:
//  - the secure consensus path computes EXACTLY what a plaintext average
//    would, round by round, for every scheme/learner-count combination;
//  - kernel Gram matrices are PSD for the PSD kernel families;
//  - serialization round-trips arbitrary payloads and never crashes on
//    truncation;
//  - fixed-point ring arithmetic commutes with summation;
//  - Paillier homomorphism holds over random batches.
#include <gtest/gtest.h>

#include <random>

#include "core/linear_horizontal.h"
#include "core/vertical.h"
#include "crypto/paillier.h"
#include "crypto/secure_sum.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "mapreduce/serde.h"
#include "svm/kernel.h"

namespace ppml {
namespace {

// ---------------------------------------------------------------------
// Secure consensus == plaintext consensus, per round.

class SecureEqualsPlain
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SecureEqualsPlain, LinearHorizontalRoundByRound) {
  const auto [m, seed] = GetParam();
  auto split = data::train_test_split(data::make_cancer_like(seed), 0.5, seed);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  const auto partition = data::partition_horizontally(split.train, m, seed);

  core::AdmmParams params;
  params.max_iterations = 6;

  // Plain path: drive the learners by hand with exact averaging.
  std::vector<core::LinearHorizontalLearner> plain;
  plain.reserve(m);
  for (const auto& shard : partition.shards)
    plain.emplace_back(shard, m, params);
  const std::size_t dim = split.train.features() + 1;
  linalg::Vector broadcast;
  std::vector<linalg::Vector> plain_broadcasts;
  for (std::size_t round = 0; round < params.max_iterations; ++round) {
    linalg::Vector average(dim, 0.0);
    for (auto& learner : plain) {
      const linalg::Vector contribution = learner.local_step(broadcast);
      linalg::axpy(1.0 / static_cast<double>(m), contribution, average);
    }
    broadcast = average;
    plain_broadcasts.push_back(average);
  }

  // Secure path: the library trainer with the full protocol.
  std::vector<std::shared_ptr<core::ConsensusLearner>> secure;
  for (const auto& shard : partition.shards)
    secure.push_back(
        std::make_shared<core::LinearHorizontalLearner>(shard, m, params));
  core::AveragingCoordinator coordinator(dim);
  std::vector<linalg::Vector> secure_broadcasts;
  core::run_consensus_in_memory(
      secure, coordinator, params, [&](std::size_t) {
        linalg::Vector state = coordinator.z();
        state.push_back(coordinator.s());
        secure_broadcasts.push_back(std::move(state));
      });

  ASSERT_EQ(secure_broadcasts.size(), plain_broadcasts.size());
  const double quantization =
      crypto::FixedPointCodec(params.fixed_point_bits, m)
          .quantization_bound(m) *
      2.0;
  for (std::size_t round = 0; round < plain_broadcasts.size(); ++round) {
    for (std::size_t j = 0; j < dim; ++j) {
      EXPECT_NEAR(secure_broadcasts[round][j], plain_broadcasts[round][j],
                  quantization + 1e-9)
          << "round " << round << " dim " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, SecureEqualsPlain,
    ::testing::Combine(::testing::Values(2u, 3u, 5u),
                       ::testing::Values(1u, 2u)));

// ---------------------------------------------------------------------
// PSD kernels produce PSD Gram matrices.

class KernelPsd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelPsd, GramPlusEpsilonFactorizes) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  linalg::Matrix points(24, 5);
  for (double& v : points.data()) v = normal(rng);

  const std::vector<svm::Kernel> psd_kernels = {
      svm::Kernel::linear(), svm::Kernel::rbf(0.3),
      svm::Kernel::polynomial(2, 0.5, 1.0)};
  for (const auto& kernel : psd_kernels) {
    linalg::Matrix gram = svm::gram(kernel, points);
    for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += 1e-8;
    EXPECT_NO_THROW(linalg::Cholesky{gram}) << kernel.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsd,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------
// Serde fuzz: random payload round trips; truncation throws, never UB.

class SerdeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeFuzz, RandomPayloadRoundTripsAndTruncationThrows) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_int_distribution<std::size_t> length(0, 20);
  std::normal_distribution<double> normal;

  mapreduce::Writer writer;
  std::vector<int> script;
  for (int op = 0; op < 30; ++op) {
    const int k = kind(rng);
    script.push_back(k);
    switch (k) {
      case 0:
        writer.put_u64(rng());
        break;
      case 1:
        writer.put_double(normal(rng));
        break;
      case 2: {
        std::string s(length(rng), 'x');
        for (char& ch : s) ch = static_cast<char>('a' + (rng() % 26));
        writer.put_string(s);
        break;
      }
      case 3: {
        std::vector<std::uint64_t> v(length(rng));
        for (auto& x : v) x = rng();
        writer.put_u64_vector(v);
        break;
      }
      default: {
        std::vector<double> v(length(rng));
        for (auto& x : v) x = normal(rng);
        writer.put_double_vector(v);
        break;
      }
    }
  }
  const mapreduce::Bytes payload = writer.buffer();

  // Full read-back succeeds and consumes everything.
  {
    mapreduce::Reader reader(payload);
    for (int k : script) {
      switch (k) {
        case 0: reader.get_u64(); break;
        case 1: reader.get_double(); break;
        case 2: reader.get_string(); break;
        case 3: reader.get_u64_vector(); break;
        default: reader.get_double_vector(); break;
      }
    }
    EXPECT_TRUE(reader.exhausted());
  }

  // Any truncation throws ppml::Error at some point (never crashes).
  std::uniform_int_distribution<std::size_t> cut(0, payload.size() - 1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = cut(rng);
    mapreduce::Bytes truncated(payload.begin(),
                               payload.begin() + static_cast<long>(n));
    mapreduce::Reader reader(truncated);
    bool threw = false;
    try {
      for (int k : script) {
        switch (k) {
          case 0: reader.get_u64(); break;
          case 1: reader.get_double(); break;
          case 2: reader.get_string(); break;
          case 3: reader.get_u64_vector(); break;
          default: reader.get_double_vector(); break;
        }
      }
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "cut at " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------
// Fixed point: ring sum == real sum (within bound) across widths/scales.

class FixedPointSum
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(FixedPointSum, RingSumMatchesRealSum) {
  const auto [bits, seed] = GetParam();
  const std::size_t terms = 64;
  const crypto::FixedPointCodec codec(bits, terms);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(-100.0, 100.0);

  std::uint64_t ring_acc = 0;
  double real_acc = 0.0;
  for (std::size_t i = 0; i < terms; ++i) {
    const double v = uniform(rng);
    ring_acc += codec.encode(v);
    real_acc += v;
  }
  EXPECT_NEAR(codec.decode(ring_acc), real_acc,
              codec.quantization_bound(terms));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FixedPointSum,
    ::testing::Combine(::testing::Values(8u, 16u, 24u, 32u),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------
// Paillier batch homomorphism.

class PaillierBatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaillierBatch, SumOfManyCiphertextsDecryptsToSum) {
  crypto::Xoshiro256 rng(GetParam());
  const auto keys = crypto::paillier_keygen(24, rng);
  crypto::u128 acc = crypto::paillier_encrypt(keys.public_key, 0, rng);
  std::uint64_t expected = 0;
  for (int i = 0; i < 25; ++i) {
    const std::uint64_t m = rng.next() % 1000;
    expected += m;
    acc = crypto::paillier_add(
        keys.public_key, acc,
        crypto::paillier_encrypt(keys.public_key, m, rng));
  }
  EXPECT_EQ(crypto::paillier_decrypt(keys.public_key, keys.private_key, acc),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierBatch,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------
// Vertical coordinator invariant: the hinge prox never increases the
// regularized objective it minimizes (sanity across random inputs).

class VerticalProx : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerticalProx, ProxPointImprovesObjective) {
  std::mt19937_64 rng(GetParam());
  std::normal_distribution<double> normal;
  const std::size_t n = 40;
  linalg::Vector labels(n);
  for (std::size_t i = 0; i < n; ++i)
    labels[i] = (rng() & 1) != 0 ? 1.0 : -1.0;

  core::AdmmParams params;
  params.rho = 10.0;
  params.c = 5.0;
  core::VerticalCoordinator coordinator(labels, 2, params);
  linalg::Vector cbar(n);
  for (double& v : cbar) v = normal(rng);
  coordinator.combine(cbar);

  // Objective: C * sum hinge(y (zeta + b)) + rho/(2M) ||zeta - q||^2 where
  // q = M(cbar + 0). The prox output must beat the trivial zeta = q point.
  const double mm = 2.0;
  linalg::Vector q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = mm * cbar[i];
  const auto objective = [&](const linalg::Vector& zeta, double b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += params.c * std::max(0.0, 1.0 - labels[i] * (zeta[i] + b));
      const double d = zeta[i] - q[i];
      acc += params.rho / (2.0 * mm) * d * d;
    }
    return acc;
  };
  const double at_prox = objective(coordinator.zeta(), coordinator.bias());
  const double at_q = objective(q, coordinator.bias());
  EXPECT_LE(at_prox, at_q + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerticalProx,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ppml
