#include <gtest/gtest.h>

#include <random>

#include "linalg/blas.h"
#include "obs/obs.h"
#include "qp/box_qp.h"
#include "qp/diagonal_qp.h"
#include "qp/factored_qp.h"
#include "qp/projected_gradient.h"
#include "qp/smo.h"

namespace ppml::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Random SPD Q of size n with condition roughly controlled by the ridge.
Matrix random_spd(std::size_t n, std::uint64_t seed, double ridge = 0.5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  Matrix b(n, n);
  for (double& v : b.data()) v = normal(rng);
  Matrix q = linalg::gram_a_at(b);
  for (std::size_t i = 0; i < n; ++i) q(i, i) += ridge;
  return q;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  Vector p(n);
  for (double& v : p) v = normal(rng);
  return p;
}

TEST(ObjectiveValue, MatchesHandComputation) {
  Matrix q{{2.0, 0.0}, {0.0, 4.0}};
  Vector p{1.0, 1.0};
  Vector x{1.0, 2.0};
  // 1/2 (2 + 16) - 3 = 6.
  EXPECT_DOUBLE_EQ(objective_value(q, p, x), 6.0);
}

TEST(BoxQp, UnconstrainedInteriorSolution) {
  // min 1/2 x^T Q x - p^T x with solution Q^{-1} p inside a huge box.
  Matrix q{{3.0, 1.0}, {1.0, 2.0}};
  Vector p{1.0, 1.0};
  const Result r = solve_box_qp(q, p, -100.0, 100.0);
  EXPECT_TRUE(r.converged);
  // Q^{-1} p = [1, 2; ... ] solve by hand: det=5, x = (1/5)[2-1, -1+3] = [0.2, 0.4].
  EXPECT_NEAR(r.x[0], 0.2, 1e-6);
  EXPECT_NEAR(r.x[1], 0.4, 1e-6);
}

TEST(BoxQp, ClipsToActiveBounds) {
  Matrix q{{1.0, 0.0}, {0.0, 1.0}};
  Vector p{10.0, -10.0};  // unconstrained solution (10, -10)
  const Result r = solve_box_qp(q, p, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(BoxQp, EmptyBoxThrows) {
  EXPECT_THROW(BoxQpSolver(Matrix::identity(2), 1.0, 0.0), InvalidArgument);
}

TEST(BoxQp, NonSquareThrows) {
  EXPECT_THROW(BoxQpSolver(Matrix(2, 3), 0.0, 1.0), InvalidArgument);
}

TEST(BoxQp, WarmStartReducesSweeps) {
  const std::size_t n = 60;
  const Matrix q = random_spd(n, 11);
  const Vector p = random_vector(n, 12);
  BoxQpSolver solver(q, 0.0, 5.0);
  const Result cold = solver.solve(p);
  ASSERT_TRUE(cold.converged);

  // Perturb p slightly; warm start from the previous solution.
  Vector p2 = p;
  for (double& v : p2) v += 1e-3;
  const Result cold2 = solver.solve(p2);
  const Result warm = solver.solve(p2, cold.x);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold2.iterations);
  EXPECT_NEAR(warm.objective, cold2.objective, 1e-6);
}

TEST(BoxQp, DegenerateZeroRowMovesToFavoredBound) {
  Matrix q(2, 2);  // zero matrix: objective is linear
  Vector p{1.0, -1.0};
  const Result r = solve_box_qp(q, p, 0.0, 2.0);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);  // -p^T x minimized at upper bound
  EXPECT_NEAR(r.x[1], 0.0, 1e-12);
}

class BoxQpCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BoxQpCrossCheck, CoordinateDescentMatchesProjectedGradient) {
  const auto [n, seed] = GetParam();
  const Matrix q = random_spd(n, seed);
  const Vector p = random_vector(n, seed ^ 0xabc);
  Options options;
  options.tolerance = 1e-8;
  options.max_iterations = 50'000;
  const Result cd = solve_box_qp(q, p, 0.0, 1.0, options);
  const Result pg = solve_box_qp_projected_gradient(q, p, 0.0, 1.0, options);
  ASSERT_TRUE(cd.converged);
  ASSERT_TRUE(pg.converged);
  // Strictly convex => unique minimizer; both solvers must agree.
  EXPECT_NEAR(cd.objective, pg.objective, 1e-6);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(cd.x[i], pg.x[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    RandomProblems, BoxQpCrossCheck,
    ::testing::Combine(::testing::Values(2, 5, 10, 25, 60),
                       ::testing::Values(1u, 2u, 3u)));

// ------------------------------------------------------------ factored QP

/// Random n x k data matrix (rows = data points).
Matrix random_rows(std::size_t n, std::size_t k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  Matrix x(n, k);
  for (double& v : x.data()) v = normal(rng);
  return x;
}

Vector random_signs(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Vector s(n);
  for (double& v : s) v = (rng() & 1u) != 0 ? 1.0 : -1.0;
  return s;
}

/// Materialize Q = alpha (SX)(SX)^T + beta s s^T as the dense oracle.
Matrix materialize_factored_q(const Matrix& x, const Vector& s, double alpha,
                              double beta) {
  const std::size_t n = x.rows();
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      q(i, j) =
          s[i] * s[j] * (alpha * linalg::dot(x.row(i), x.row(j)) + beta);
  return q;
}

class FactoredQpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FactoredQpRandom, AgreesWithDenseBoxSolver) {
  const std::uint64_t seed = GetParam();
  // k > n keeps alpha (SX)(SX)^T full rank, so the minimizer is unique and
  // both representations must land on it.
  const std::size_t n = 24;
  const std::size_t k = 30;
  const Matrix x = random_rows(n, k, seed);
  const Vector s = random_signs(n, seed ^ 0x5eed);
  const double alpha = 0.8;
  const double beta = 0.25;
  const Vector p = random_vector(n, seed ^ 0xabc);

  Options options;
  options.tolerance = 1e-10;
  options.max_iterations = 100'000;

  BoxQpSolver dense(materialize_factored_q(x, s, alpha, beta), 0.0, 2.0);
  FactoredBoxQpSolver factored(x, s, alpha, beta, 0.0, 2.0);
  const Result a = dense.solve(p, std::nullopt, options);
  const Result b = factored.solve(p, std::nullopt, options);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  // Same problem through two representations: agreement to tolerance, not
  // bit-identity — the accumulation orders differ by design.
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(a.x[i], b.x[i], 1e-5) << i;
}

INSTANTIATE_TEST_SUITE_P(MultiSeed, FactoredQpRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(FactoredQp, RepeatSolvesAreBitIdentical) {
  const Matrix x = random_rows(20, 8, 9);
  const Vector s = random_signs(20, 10);
  FactoredBoxQpSolver solver(x, s, 0.7, 0.3, 0.0, 1.5);
  const Vector p = random_vector(20, 11);
  const Result a = solver.solve(p);
  const Result b = solver.solve(p);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(FactoredQp, DegenerateZeroRowMovesToFavoredBound) {
  Matrix x(2, 3);  // all-zero rows with beta = 0: the objective is linear
  Vector s{1.0, -1.0};
  FactoredBoxQpSolver solver(x, s, 1.0, 0.0, 0.0, 2.0);
  const Result r = solver.solve(Vector{1.0, -1.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);  // -p^T x minimized at the upper bound
  EXPECT_NEAR(r.x[1], 0.0, 1e-12);
}

TEST(FactoredQp, WarmStartReducesSweeps) {
  const std::size_t n = 40;
  const Matrix x = random_rows(n, 50, 21);
  const Vector s = random_signs(n, 22);
  FactoredBoxQpSolver solver(x, s, 1.0, 0.2, 0.0, 5.0);
  const Vector p = random_vector(n, 23);
  const Result cold = solver.solve(p);
  ASSERT_TRUE(cold.converged);

  Vector p2 = p;
  for (double& v : p2) v += 1e-3;
  const Result cold2 = solver.solve(p2);
  const Result warm = solver.solve(p2, cold.x);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold2.iterations);
  EXPECT_NEAR(warm.objective, cold2.objective, 1e-6);
}

TEST(FactoredQp, ValidatesInputs) {
  Matrix x(3, 2);
  EXPECT_THROW(FactoredBoxQpSolver(x, Vector{1.0, -1.0}, 1.0, 0.0, 0.0, 1.0),
               InvalidArgument);  // s size mismatch
  EXPECT_THROW(FactoredBoxQpSolver(x, Vector{1.0, 1.0, 1.0}, 1.0, 0.0, 1.0,
                                   0.0),
               InvalidArgument);  // empty box
  EXPECT_THROW(FactoredBoxQpSolver(x, Vector{1.0, 1.0, 1.0}, -1.0, 0.0, 0.0,
                                   1.0),
               InvalidArgument);  // indefinite Q
}

TEST(ProjectedGradient, HandlesAllActiveBox) {
  Matrix q = Matrix::identity(3);
  Vector p{5.0, 5.0, 5.0};
  const Result r = solve_box_qp_projected_gradient(q, p, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_NEAR(v, 1.0, 1e-9);
}

// ------------------------------------------------------------------ SMO

/// Brute-force reference for tiny SVM duals: grid search over the box
/// surface satisfying the equality constraint (2 variables).
TEST(Smo, TwoVariableProblemMatchesClosedForm) {
  // min 1/2 x^T Q x - 1^T x, y = (+1, -1), y^T x = 0 => x1 = x2 = t.
  // Objective: 1/2 t^2 (q11 + q22 - 2 q12*y1y2=... ) with y1y2=-1.
  Matrix q{{2.0, 0.5}, {0.5, 1.0}};
  SmoProblem problem{q, Vector{1.0, 1.0}, Vector{1.0, -1.0}, 10.0, 0.0};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  // With x = (t, t): f(t) = 1/2 t^2 (2 + 1 + 2*0.5) - 2t = 2t^2 - 2t,
  // minimized at t = 0.5.
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
  EXPECT_NEAR(r.x[1], 0.5, 1e-6);
}

TEST(Smo, RespectsEqualityConstraint) {
  const std::size_t n = 20;
  const Matrix q = random_spd(n, 5);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = i % 2 == 0 ? 1.0 : -1.0;
  SmoProblem problem{q, Vector(n, 1.0), y, 3.0, 0.0};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::dot(y, r.x), 0.0, 1e-9);
  for (double v : r.x) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 3.0 + 1e-12);
  }
}

TEST(Smo, NonzeroDeltaFeasibleStart) {
  const std::size_t n = 10;
  const Matrix q = random_spd(n, 6);
  Vector y(n, 1.0);
  y[0] = -1.0;
  SmoProblem problem{q, Vector(n, 1.0), y, 2.0, 3.5};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::dot(y, r.x), 3.5, 1e-9);
}

TEST(Smo, InfeasibleDeltaThrows) {
  SmoProblem problem{Matrix::identity(2), Vector{1.0, 1.0},
                     Vector{1.0, 1.0}, 1.0, 5.0};  // max y^T x = 2 < 5
  EXPECT_THROW(solve_smo(problem), InvalidArgument);
}

TEST(Smo, RejectsBadLabels) {
  SmoProblem problem{Matrix::identity(2), Vector{1.0, 1.0},
                     Vector{1.0, 0.5}, 1.0, 0.0};
  EXPECT_THROW(solve_smo(problem), InvalidArgument);
}

TEST(Smo, AgreesWithBoxSolverWhenConstraintInactive) {
  // If the unconstrained-in-the-equality optimum happens to satisfy
  // y^T x = 0, SMO and a plain box solve agree. Build symmetric problem.
  Matrix q{{2.0, 0.0, 0.0, 0.0},
           {0.0, 2.0, 0.0, 0.0},
           {0.0, 0.0, 2.0, 0.0},
           {0.0, 0.0, 0.0, 2.0}};
  Vector p{1.0, 1.0, 1.0, 1.0};
  Vector y{1.0, -1.0, 1.0, -1.0};
  const Result smo = solve_smo(SmoProblem{q, p, y, 10.0, 0.0});
  const Result box = solve_box_qp(q, p, 0.0, 10.0);
  ASSERT_TRUE(smo.converged);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(smo.x[i], box.x[i], 1e-6);
}

// ----------------------------------------------------------- diagonal QP

TEST(DiagonalQp, MatchesSmoOnDiagonalProblems) {
  const std::size_t n = 30;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(0.5, 2.0);
  DiagonalQpProblem problem;
  problem.d.resize(n);
  for (double& v : problem.d) v = uniform(rng);
  problem.p = random_vector(n, 8);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) problem.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  problem.c = 1.5;
  problem.delta = 0.0;

  const Result exact = solve_diagonal_qp(problem);
  ASSERT_TRUE(exact.converged);

  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = problem.d[i];
  const Result smo = solve_smo(
      SmoProblem{q, problem.p, problem.y, problem.c, 0.0});
  ASSERT_TRUE(smo.converged);
  EXPECT_NEAR(exact.objective, smo.objective, 1e-6);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(exact.x[i], smo.x[i], 1e-4);
}

TEST(DiagonalQp, SatisfiesEqualityExactly) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 2.0, 3.0, 4.0};
  problem.p = {0.5, -0.2, 1.4, 2.0};
  problem.y = {1.0, -1.0, -1.0, 1.0};
  problem.c = 1.0;
  problem.delta = 0.7;
  const Result r = solve_diagonal_qp(problem);
  double acc = 0.0;
  for (std::size_t i = 0; i < 4; ++i) acc += problem.y[i] * r.x[i];
  EXPECT_NEAR(acc, 0.7, 1e-9);
}

TEST(DiagonalQp, InfeasibleThrows) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 1.0};
  problem.p = {0.0, 0.0};
  problem.y = {1.0, 1.0};
  problem.c = 1.0;
  problem.delta = -0.5;  // y^T x >= 0 always here
  EXPECT_THROW(solve_diagonal_qp(problem), InvalidArgument);
}

TEST(DiagonalQp, RejectsNonPositiveDiagonal) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 0.0};
  problem.p = {0.0, 0.0};
  problem.y = {1.0, -1.0};
  EXPECT_THROW(solve_diagonal_qp(problem), InvalidArgument);
}

class DiagonalQpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagonalQpRandom, KktHolds) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.2, 3.0);
  const std::size_t n = 50;
  DiagonalQpProblem problem;
  problem.d.resize(n);
  for (double& v : problem.d) v = uniform(rng);
  problem.p = random_vector(n, seed ^ 0x77);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    problem.y[i] = (rng() & 1) != 0 ? 1.0 : -1.0;
  problem.c = 2.0;
  problem.delta = 0.0;
  const Result r = solve_diagonal_qp(problem);
  ASSERT_TRUE(r.converged);

  // KKT: exists nu such that for all i, x_i = clip((p_i - nu y_i)/d_i).
  // Verify stationarity per coordinate using the recovered residuals: for
  // interior coordinates, (d_i x_i - p_i) / (-y_i) must be a common nu.
  double nu = 0.0;
  bool found = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (r.x[i] > 1e-9 && r.x[i] < problem.c - 1e-9) {
      nu = (problem.p[i] - problem.d[i] * r.x[i]) / problem.y[i];
      found = true;
      break;
    }
  }
  if (found) {
    for (std::size_t i = 0; i < n; ++i) {
      const double target =
          std::clamp((problem.p[i] - nu * problem.y[i]) / problem.d[i], 0.0,
                     problem.c);
      EXPECT_NEAR(r.x[i], target, 1e-6) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagonalQpRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------- kernel cache

/// Evaluator that serves rows of a dense matrix and counts evaluations.
struct CountingEvaluator {
  const Matrix* q;
  std::vector<int>* eval_counts;
  void operator()(std::size_t i, std::span<double> out) const {
    ++(*eval_counts)[i];
    const auto row = q->row(i);
    std::copy(row.begin(), row.end(), out.begin());
  }
};

TEST(KernelCache, BudgetToRowCapacity) {
  const Matrix q = random_spd(8, 21);
  std::vector<int> counts(8, 0);
  const CountingEvaluator eval{&q, &counts};
  // One row = 8 doubles = 64 bytes.
  EXPECT_EQ(KernelCache(8, eval, 3 * 64).capacity_rows(), 3u);
  EXPECT_EQ(KernelCache(8, eval, 3 * 64 + 63).capacity_rows(), 3u);
  // 0 = unlimited: every row fits.
  EXPECT_EQ(KernelCache(8, eval, 0).capacity_rows(), 8u);
  // Budgets below two rows are clamped up so SMO can hold a pair.
  EXPECT_EQ(KernelCache(8, eval, 1).capacity_rows(), 2u);
  // Budgets above n rows are clamped down.
  EXPECT_EQ(KernelCache(8, eval, 1 << 20).capacity_rows(), 8u);
  EXPECT_EQ(KernelCache(1, eval, 1).capacity_rows(), 1u);
}

TEST(KernelCache, LruEvictionOrder) {
  const std::size_t n = 4;
  const Matrix q = random_spd(n, 22);
  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&q, &counts}, 2 * n * sizeof(double));
  ASSERT_EQ(cache.capacity_rows(), 2u);

  cache.row(0);  // miss, cache = {0}
  cache.row(1);  // miss, cache = {1, 0}
  cache.row(0);  // hit, cache = {0, 1}
  cache.row(2);  // miss, evicts 1 (LRU), cache = {2, 0}
  cache.row(0);  // hit
  cache.row(1);  // miss again: 1 was evicted; evicts 2
  EXPECT_EQ(counts, (std::vector<int>{1, 2, 1, 0}));
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 2.0 / 6.0);
  EXPECT_EQ(cache.cached_rows(), 2u);
}

TEST(KernelCache, ReturnedRowSurvivesOneFurtherFetch) {
  // The SMO step fetches row i then row j and reads both spans: the cache
  // guarantees the i-span is not invalidated by the j-fetch even at minimum
  // capacity, because i is most-recently-used when j is fetched.
  const std::size_t n = 6;
  const Matrix q = random_spd(n, 23);
  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&q, &counts}, 1);  // capacity 2
  ASSERT_EQ(cache.capacity_rows(), 2u);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto row_i = cache.row(i);
      const auto row_j = cache.row(j);
      for (std::size_t t = 0; t < n; ++t) {
        ASSERT_EQ(row_i[t], q(i, t)) << "i=" << i << " j=" << j;
        ASSERT_EQ(row_j[t], q(j, t)) << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(KernelCache, RowContentsMatchEvaluator) {
  const std::size_t n = 5;
  const Matrix q = random_spd(n, 24);
  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&q, &counts}, 0);
  for (std::size_t pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = cache.row(i);
      for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(row[j], q(i, j));
    }
  // Unlimited budget: second pass is all hits, nothing re-evaluated.
  for (int c : counts) EXPECT_EQ(c, 1);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(KernelCache, DestructorFlushesStatsIntoALiveSession) {
  const std::size_t n = 4;
  const Matrix q = random_spd(n, 25);
  std::vector<int> counts(n, 0);
  obs::MetricsRegistry metrics;
  {
    obs::Session session(nullptr, &metrics);
    {
      KernelCache cache(n, CountingEvaluator{&q, &counts}, 0);
      cache.row(0);
      cache.row(0);
      cache.row(1);
    }  // cache destroyed while the session is installed: dtor flush lands
  }
  EXPECT_EQ(metrics.counter("qp.cache.hits"), 1);
  EXPECT_EQ(metrics.counter("qp.cache.misses"), 2);
  EXPECT_EQ(metrics.counter("qp.cache.evictions"), 0);
}

TEST(KernelCache, FlushSurvivesCacheOutlivingTheSession) {
  // The teardown-order hazard this API exists for: a cache that outlives
  // the obs session must not silently drop its counts. flush_stats() with
  // no registry installed keeps the tallies, so an explicit in-session
  // flush — or a flush under a *later* session — still lands them.
  const std::size_t n = 4;
  const Matrix q = random_spd(n, 26);
  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&q, &counts}, 0);

  obs::MetricsRegistry first;
  {
    obs::Session session(nullptr, &first);
    cache.row(0);
    cache.row(0);
    cache.row(1);
    cache.flush_stats();  // what svm::train_kernel_svm does post-solve
  }
  EXPECT_EQ(first.counter("qp.cache.hits"), 1);
  EXPECT_EQ(first.counter("qp.cache.misses"), 2);

  // More traffic after the session is gone: a no-registry flush keeps the
  // counts instead of zeroing them...
  cache.row(2);
  cache.row(2);
  cache.flush_stats();

  // ...so a later session still receives them in full.
  obs::MetricsRegistry second;
  {
    obs::Session session(nullptr, &second);
    cache.flush_stats();
  }
  EXPECT_EQ(second.counter("qp.cache.hits"), 1);
  EXPECT_EQ(second.counter("qp.cache.misses"), 1);

  // Flushing is draining: nothing double-counts on a further flush.
  obs::MetricsRegistry third;
  {
    obs::Session session(nullptr, &third);
    cache.flush_stats();
  }
  EXPECT_EQ(third.counter("qp.cache.hits"), 0);
  EXPECT_EQ(third.counter("qp.cache.misses"), 0);
}

TEST(KernelCache, FillRowsFlushesCountersBeforeReturning) {
  // The batched-fill contract: qp.cache.* counters land in the obs session
  // BEFORE fill_rows returns, so per-batch metric snapshots stay exact —
  // no traffic is left stranded in the cache waiting for a destructor
  // flush that may happen after the session closes.
  const std::size_t n = 6;
  const Matrix q = random_spd(n, 27);
  std::vector<int> counts(n, 0);
  obs::MetricsRegistry metrics;
  obs::Session session(nullptr, &metrics);
  // Budget for exactly 2 resident rows of the 6.
  KernelCache cache(n, CountingEvaluator{&q, &counts},
                    2 * n * sizeof(double));
  cache.row(1);  // warm one row so the batch sees a hit
  cache.flush_stats();

  // The batch is LARGER than the cache capacity: copied-out rows stay
  // valid even after their cache entry is evicted mid-batch.
  const std::size_t ids[] = {1, 3, 1, 5};
  Matrix out(4, n);
  const auto batch = cache.fill_rows(ids, out);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t c = 0; c < n; ++c) EXPECT_EQ(out(j, c), q(ids[j], c));

  // hit(1), miss(3), hit(1), miss(5) evicting the LRU row 3.
  EXPECT_EQ(batch.hits, 2);
  EXPECT_EQ(batch.misses, 2);
  EXPECT_EQ(batch.evictions, 1);

  // Already flushed: the session holds the full tallies (including the
  // warm-up miss) and the cache's own counters are drained.
  EXPECT_EQ(metrics.counter("qp.cache.hits"), 2);
  EXPECT_EQ(metrics.counter("qp.cache.misses"), 3);
  EXPECT_EQ(metrics.counter("qp.cache.evictions"), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.evictions(), 0);
}

// ------------------------------------------------- cached + shrinking SMO

TEST(Smo, DegenerateStepDoesNotFakeConvergence) {
  // Overflowing curvature (1e308 + 1e308 -> inf) makes the closed-form step
  // t = -slope/curvature collapse to exactly 0.0 while the selected pair
  // still violates the KKT conditions by 2. The solver must report the
  // stall as non-converged, not claim optimality.
  Matrix q{{1e308, 0.0}, {0.0, 1e308}};
  SmoProblem problem{q, Vector{1.0, 1.0}, Vector{1.0, -1.0}, 1.0, 0.0};
  const Result r = solve_smo(problem);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.kkt_violation, 1.0);
}

/// Random SVM-dual-shaped SMO problem (p = 1, labels +-1).
SmoProblem random_smo_problem(std::size_t n, std::uint64_t seed,
                              double c = 1.5, double delta = 0.0) {
  SmoProblem problem;
  problem.q = random_spd(n, seed);
  problem.p.assign(n, 1.0);
  problem.y.resize(n);
  std::mt19937_64 rng(seed ^ 0xbeef);
  for (std::size_t i = 0; i < n; ++i)
    problem.y[i] = (rng() & 1) != 0 ? 1.0 : -1.0;
  problem.c = c;
  problem.delta = delta;
  return problem;
}

class SmoCachedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmoCachedEquivalence, BitIdenticalToDenseAcrossBudgets) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 40;
  const SmoProblem problem = random_smo_problem(n, seed);

  Options dense_options;
  dense_options.shrinking = false;  // pure dense reference, full scans
  const Result dense = solve_smo(problem, dense_options);
  ASSERT_TRUE(dense.converged);

  const std::size_t row_bytes = n * sizeof(double);
  for (const std::size_t budget :
       {std::size_t{0}, (n / 4) * row_bytes, std::size_t{1}}) {
    std::vector<int> counts(n, 0);
    KernelCache cache(n, CountingEvaluator{&problem.q, &counts}, budget);
    const Result cached = solve_smo(cache, problem.p, problem.y, problem.c,
                                    problem.delta);  // shrinking on (default)
    ASSERT_TRUE(cached.converged);
    EXPECT_EQ(cached.iterations, dense.iterations) << "budget=" << budget;
    ASSERT_EQ(cached.x.size(), dense.x.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(cached.x[i], dense.x[i])  // exact: same fp op sequence
          << "budget=" << budget << " i=" << i;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cached.g[i], dense.g[i]);
  }
}

TEST_P(SmoCachedEquivalence, BitIdenticalWithNonzeroDelta) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 24;
  const SmoProblem problem =
      random_smo_problem(n, seed ^ 0x5a5a, /*c=*/2.0, /*delta=*/3.0);

  Options dense_options;
  dense_options.shrinking = false;
  const Result dense = solve_smo(problem, dense_options);
  ASSERT_TRUE(dense.converged);

  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&problem.q, &counts},
                    (n / 3) * n * sizeof(double));
  const Result cached =
      solve_smo(cache, problem.p, problem.y, problem.c, problem.delta);
  ASSERT_TRUE(cached.converged);
  EXPECT_NEAR(linalg::dot(problem.y, cached.x), 3.0, 1e-9);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cached.x[i], dense.x[i]);
}

TEST_P(SmoCachedEquivalence, DenseShrinkingMatchesDenseFullScan) {
  const std::uint64_t seed = GetParam();
  const SmoProblem problem = random_smo_problem(48, seed ^ 0x1234);
  Options full;
  full.shrinking = false;
  Options shrunk;
  shrunk.shrinking = true;
  const Result a = solve_smo(problem, full);
  const Result b = solve_smo(problem, shrunk);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
  EXPECT_EQ(a.objective, b.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmoCachedEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(Smo, CachedReusesRowsAcrossIterations) {
  const std::size_t n = 60;
  const SmoProblem problem = random_smo_problem(n, 99);
  std::vector<int> counts(n, 0);
  KernelCache cache(n, CountingEvaluator{&problem.q, &counts}, /*budget=*/0);
  const Result r = solve_smo(cache, problem.p, problem.y, problem.c, 0.0);
  ASSERT_TRUE(r.converged);
  ASSERT_GT(r.iterations, 1u);
  // Unlimited budget: every row is evaluated at most once no matter how
  // many pair steps revisit it, and revisits are all hits.
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_LE(cache.misses(), static_cast<std::int64_t>(n));
  for (int c : counts) EXPECT_LE(c, 1);
  EXPECT_GT(cache.hits(), cache.misses());
}

}  // namespace
}  // namespace ppml::qp
