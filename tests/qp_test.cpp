#include <gtest/gtest.h>

#include <random>

#include "linalg/blas.h"
#include "qp/box_qp.h"
#include "qp/diagonal_qp.h"
#include "qp/projected_gradient.h"
#include "qp/smo.h"

namespace ppml::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Random SPD Q of size n with condition roughly controlled by the ridge.
Matrix random_spd(std::size_t n, std::uint64_t seed, double ridge = 0.5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  Matrix b(n, n);
  for (double& v : b.data()) v = normal(rng);
  Matrix q = linalg::gram_a_at(b);
  for (std::size_t i = 0; i < n; ++i) q(i, i) += ridge;
  return q;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  Vector p(n);
  for (double& v : p) v = normal(rng);
  return p;
}

TEST(ObjectiveValue, MatchesHandComputation) {
  Matrix q{{2.0, 0.0}, {0.0, 4.0}};
  Vector p{1.0, 1.0};
  Vector x{1.0, 2.0};
  // 1/2 (2 + 16) - 3 = 6.
  EXPECT_DOUBLE_EQ(objective_value(q, p, x), 6.0);
}

TEST(BoxQp, UnconstrainedInteriorSolution) {
  // min 1/2 x^T Q x - p^T x with solution Q^{-1} p inside a huge box.
  Matrix q{{3.0, 1.0}, {1.0, 2.0}};
  Vector p{1.0, 1.0};
  const Result r = solve_box_qp(q, p, -100.0, 100.0);
  EXPECT_TRUE(r.converged);
  // Q^{-1} p = [1, 2; ... ] solve by hand: det=5, x = (1/5)[2-1, -1+3] = [0.2, 0.4].
  EXPECT_NEAR(r.x[0], 0.2, 1e-6);
  EXPECT_NEAR(r.x[1], 0.4, 1e-6);
}

TEST(BoxQp, ClipsToActiveBounds) {
  Matrix q{{1.0, 0.0}, {0.0, 1.0}};
  Vector p{10.0, -10.0};  // unconstrained solution (10, -10)
  const Result r = solve_box_qp(q, p, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(BoxQp, EmptyBoxThrows) {
  EXPECT_THROW(BoxQpSolver(Matrix::identity(2), 1.0, 0.0), InvalidArgument);
}

TEST(BoxQp, NonSquareThrows) {
  EXPECT_THROW(BoxQpSolver(Matrix(2, 3), 0.0, 1.0), InvalidArgument);
}

TEST(BoxQp, WarmStartReducesSweeps) {
  const std::size_t n = 60;
  const Matrix q = random_spd(n, 11);
  const Vector p = random_vector(n, 12);
  BoxQpSolver solver(q, 0.0, 5.0);
  const Result cold = solver.solve(p);
  ASSERT_TRUE(cold.converged);

  // Perturb p slightly; warm start from the previous solution.
  Vector p2 = p;
  for (double& v : p2) v += 1e-3;
  const Result cold2 = solver.solve(p2);
  const Result warm = solver.solve(p2, cold.x);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold2.iterations);
  EXPECT_NEAR(warm.objective, cold2.objective, 1e-6);
}

TEST(BoxQp, DegenerateZeroRowMovesToFavoredBound) {
  Matrix q(2, 2);  // zero matrix: objective is linear
  Vector p{1.0, -1.0};
  const Result r = solve_box_qp(q, p, 0.0, 2.0);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);  // -p^T x minimized at upper bound
  EXPECT_NEAR(r.x[1], 0.0, 1e-12);
}

class BoxQpCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BoxQpCrossCheck, CoordinateDescentMatchesProjectedGradient) {
  const auto [n, seed] = GetParam();
  const Matrix q = random_spd(n, seed);
  const Vector p = random_vector(n, seed ^ 0xabc);
  Options options;
  options.tolerance = 1e-8;
  options.max_iterations = 50'000;
  const Result cd = solve_box_qp(q, p, 0.0, 1.0, options);
  const Result pg = solve_box_qp_projected_gradient(q, p, 0.0, 1.0, options);
  ASSERT_TRUE(cd.converged);
  ASSERT_TRUE(pg.converged);
  // Strictly convex => unique minimizer; both solvers must agree.
  EXPECT_NEAR(cd.objective, pg.objective, 1e-6);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(cd.x[i], pg.x[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    RandomProblems, BoxQpCrossCheck,
    ::testing::Combine(::testing::Values(2, 5, 10, 25, 60),
                       ::testing::Values(1u, 2u, 3u)));

TEST(ProjectedGradient, HandlesAllActiveBox) {
  Matrix q = Matrix::identity(3);
  Vector p{5.0, 5.0, 5.0};
  const Result r = solve_box_qp_projected_gradient(q, p, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_NEAR(v, 1.0, 1e-9);
}

// ------------------------------------------------------------------ SMO

/// Brute-force reference for tiny SVM duals: grid search over the box
/// surface satisfying the equality constraint (2 variables).
TEST(Smo, TwoVariableProblemMatchesClosedForm) {
  // min 1/2 x^T Q x - 1^T x, y = (+1, -1), y^T x = 0 => x1 = x2 = t.
  // Objective: 1/2 t^2 (q11 + q22 - 2 q12*y1y2=... ) with y1y2=-1.
  Matrix q{{2.0, 0.5}, {0.5, 1.0}};
  SmoProblem problem{q, Vector{1.0, 1.0}, Vector{1.0, -1.0}, 10.0, 0.0};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  // With x = (t, t): f(t) = 1/2 t^2 (2 + 1 + 2*0.5) - 2t = 2t^2 - 2t,
  // minimized at t = 0.5.
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
  EXPECT_NEAR(r.x[1], 0.5, 1e-6);
}

TEST(Smo, RespectsEqualityConstraint) {
  const std::size_t n = 20;
  const Matrix q = random_spd(n, 5);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = i % 2 == 0 ? 1.0 : -1.0;
  SmoProblem problem{q, Vector(n, 1.0), y, 3.0, 0.0};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::dot(y, r.x), 0.0, 1e-9);
  for (double v : r.x) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 3.0 + 1e-12);
  }
}

TEST(Smo, NonzeroDeltaFeasibleStart) {
  const std::size_t n = 10;
  const Matrix q = random_spd(n, 6);
  Vector y(n, 1.0);
  y[0] = -1.0;
  SmoProblem problem{q, Vector(n, 1.0), y, 2.0, 3.5};
  const Result r = solve_smo(problem);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::dot(y, r.x), 3.5, 1e-9);
}

TEST(Smo, InfeasibleDeltaThrows) {
  SmoProblem problem{Matrix::identity(2), Vector{1.0, 1.0},
                     Vector{1.0, 1.0}, 1.0, 5.0};  // max y^T x = 2 < 5
  EXPECT_THROW(solve_smo(problem), InvalidArgument);
}

TEST(Smo, RejectsBadLabels) {
  SmoProblem problem{Matrix::identity(2), Vector{1.0, 1.0},
                     Vector{1.0, 0.5}, 1.0, 0.0};
  EXPECT_THROW(solve_smo(problem), InvalidArgument);
}

TEST(Smo, AgreesWithBoxSolverWhenConstraintInactive) {
  // If the unconstrained-in-the-equality optimum happens to satisfy
  // y^T x = 0, SMO and a plain box solve agree. Build symmetric problem.
  Matrix q{{2.0, 0.0, 0.0, 0.0},
           {0.0, 2.0, 0.0, 0.0},
           {0.0, 0.0, 2.0, 0.0},
           {0.0, 0.0, 0.0, 2.0}};
  Vector p{1.0, 1.0, 1.0, 1.0};
  Vector y{1.0, -1.0, 1.0, -1.0};
  const Result smo = solve_smo(SmoProblem{q, p, y, 10.0, 0.0});
  const Result box = solve_box_qp(q, p, 0.0, 10.0);
  ASSERT_TRUE(smo.converged);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(smo.x[i], box.x[i], 1e-6);
}

// ----------------------------------------------------------- diagonal QP

TEST(DiagonalQp, MatchesSmoOnDiagonalProblems) {
  const std::size_t n = 30;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(0.5, 2.0);
  DiagonalQpProblem problem;
  problem.d.resize(n);
  for (double& v : problem.d) v = uniform(rng);
  problem.p = random_vector(n, 8);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) problem.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  problem.c = 1.5;
  problem.delta = 0.0;

  const Result exact = solve_diagonal_qp(problem);
  ASSERT_TRUE(exact.converged);

  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = problem.d[i];
  const Result smo = solve_smo(
      SmoProblem{q, problem.p, problem.y, problem.c, 0.0});
  ASSERT_TRUE(smo.converged);
  EXPECT_NEAR(exact.objective, smo.objective, 1e-6);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(exact.x[i], smo.x[i], 1e-4);
}

TEST(DiagonalQp, SatisfiesEqualityExactly) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 2.0, 3.0, 4.0};
  problem.p = {0.5, -0.2, 1.4, 2.0};
  problem.y = {1.0, -1.0, -1.0, 1.0};
  problem.c = 1.0;
  problem.delta = 0.7;
  const Result r = solve_diagonal_qp(problem);
  double acc = 0.0;
  for (std::size_t i = 0; i < 4; ++i) acc += problem.y[i] * r.x[i];
  EXPECT_NEAR(acc, 0.7, 1e-9);
}

TEST(DiagonalQp, InfeasibleThrows) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 1.0};
  problem.p = {0.0, 0.0};
  problem.y = {1.0, 1.0};
  problem.c = 1.0;
  problem.delta = -0.5;  // y^T x >= 0 always here
  EXPECT_THROW(solve_diagonal_qp(problem), InvalidArgument);
}

TEST(DiagonalQp, RejectsNonPositiveDiagonal) {
  DiagonalQpProblem problem;
  problem.d = {1.0, 0.0};
  problem.p = {0.0, 0.0};
  problem.y = {1.0, -1.0};
  EXPECT_THROW(solve_diagonal_qp(problem), InvalidArgument);
}

class DiagonalQpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagonalQpRandom, KktHolds) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.2, 3.0);
  const std::size_t n = 50;
  DiagonalQpProblem problem;
  problem.d.resize(n);
  for (double& v : problem.d) v = uniform(rng);
  problem.p = random_vector(n, seed ^ 0x77);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    problem.y[i] = (rng() & 1) != 0 ? 1.0 : -1.0;
  problem.c = 2.0;
  problem.delta = 0.0;
  const Result r = solve_diagonal_qp(problem);
  ASSERT_TRUE(r.converged);

  // KKT: exists nu such that for all i, x_i = clip((p_i - nu y_i)/d_i).
  // Verify stationarity per coordinate using the recovered residuals: for
  // interior coordinates, (d_i x_i - p_i) / (-y_i) must be a common nu.
  double nu = 0.0;
  bool found = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (r.x[i] > 1e-9 && r.x[i] < problem.c - 1e-9) {
      nu = (problem.p[i] - problem.d[i] * r.x[i]) / problem.y[i];
      found = true;
      break;
    }
  }
  if (found) {
    for (std::size_t i = 0; i < n; ++i) {
      const double target =
          std::clamp((problem.p[i] - nu * problem.y[i]) / problem.d[i], 0.0,
                     problem.c);
      EXPECT_NEAR(r.x[i], target, 1e-6) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagonalQpRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ppml::qp
