// Edge-case and integration corners not covered by the per-module suites:
// file-level IO round trips, GLM learners on the MapReduce cluster, small
// numeric corner cases, and cross-module plumbing details.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/glm_horizontal.h"
#include "core/mapreduce_adapter.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/standardize.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "svm/metrics.h"
#include "svm/trainer.h"

namespace ppml {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("ppml-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(FileIo, CsvFileRoundTrip) {
  TempDir dir;
  const data::Dataset original = data::make_cancer_like(2);
  const std::string path = dir.file("data.csv");
  data::save_csv_file(original, path);
  const data::Dataset loaded = data::load_csv_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.y, original.y);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < original.features(); ++j)
      EXPECT_DOUBLE_EQ(loaded.x(i, j), original.x(i, j));
}

TEST(FileIo, MissingFilesThrow) {
  EXPECT_THROW(data::load_csv_file("/nonexistent/nope.csv"), Error);
  EXPECT_THROW(data::load_libsvm_file("/nonexistent/nope.libsvm"), Error);
}

TEST(FileIo, LibsvmFileRoundTripThroughCsvModel) {
  TempDir dir;
  const std::string path = dir.file("data.libsvm");
  {
    std::ofstream out(path);
    out << "+1 1:0.5 2:1.0\n-1 2:2.0\n+1 1:-1.5\n";
  }
  const data::Dataset d = data::load_libsvm_file(path);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_DOUBLE_EQ(d.x(2, 0), -1.5);
}

TEST(FileIo, ModelSaveLoadThroughFiles) {
  TempDir dir;
  const data::Dataset d = data::make_cancer_like(4);
  svm::TrainOptions options;
  options.c = 1.0;
  const svm::LinearModel model = svm::train_linear_svm(d, options);
  const std::string path = dir.file("model.txt");
  {
    std::ofstream out(path);
    model.save(out);
  }
  std::ifstream in(path);
  const svm::LinearModel loaded = svm::LinearModel::load(in);
  EXPECT_EQ(loaded.w, model.w);
  EXPECT_DOUBLE_EQ(loaded.b, model.b);
}

TEST(NumericCorners, OneByOneCholesky) {
  linalg::Matrix a{{4.0}};
  const linalg::Cholesky chol(a);
  EXPECT_DOUBLE_EQ(chol.l()(0, 0), 2.0);
  const linalg::Vector x = chol.solve(linalg::Vector{8.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(NumericCorners, LdltZeroPivotThrows) {
  linalg::Matrix a{{0.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW(linalg::Ldlt{a}, NumericError);
}

TEST(NumericCorners, EmptyMatrixOperations) {
  linalg::Matrix empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.transposed().rows(), 0u);
  const linalg::Matrix gram = linalg::gram_at_a(linalg::Matrix(3, 0));
  EXPECT_EQ(gram.rows(), 0u);
}

TEST(NumericCorners, SingleSampleShardStillTrains) {
  // A learner with exactly one row per class must not break the QP.
  data::Dataset tiny;
  tiny.x = linalg::Matrix{{1.0, 0.0}, {-1.0, 0.0}};
  tiny.y = {1.0, -1.0};
  core::AdmmParams params;
  params.max_iterations = 5;
  core::LinearHorizontalLearner learner(tiny, 2, params);
  const linalg::Vector contribution = learner.local_step({});
  EXPECT_EQ(contribution.size(), 3u);
  for (double v : contribution) EXPECT_TRUE(std::isfinite(v));
}

TEST(GlmOnCluster, LogisticRunsThroughMapReduceAdapter) {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  const auto partition = data::partition_horizontally(split.train, 3, 7);

  std::vector<mapreduce::Bytes> shards;
  for (const auto& shard : partition.shards)
    shards.push_back(core::serialize_horizontal_shard(shard));

  core::GlmParams glm;
  glm.max_iterations = 40;
  const core::AdmmParams admm = glm.as_admm();
  core::AveragingCoordinator coordinator(split.train.features() + 1);
  const core::GlmParams captured = glm;
  const core::LearnerFactory factory = [captured](
                                           mapreduce::BytesView payload,
                                           std::size_t) {
    return std::make_shared<core::LogisticHorizontalLearner>(
        core::deserialize_horizontal_shard(payload), 3, captured);
  };

  mapreduce::ClusterConfig config;
  config.num_nodes = 4;
  mapreduce::Cluster cluster(config);
  const auto result = core::run_consensus_on_cluster(
      cluster, shards, factory, coordinator, split.train.features() + 1,
      /*reducer_node=*/3, admm);
  EXPECT_EQ(result.job.rounds, 40u);

  const svm::LinearModel model{coordinator.z(), coordinator.s()};
  EXPECT_GE(svm::accuracy(model.predict_all(split.test.x), split.test.y),
            0.9);
}

TEST(GlmOnCluster, MatchesInMemoryLogistic) {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  const auto partition = data::partition_horizontally(split.train, 3, 7);
  core::GlmParams glm;
  glm.max_iterations = 15;
  const auto reference = core::train_logistic_horizontal(partition, glm);

  std::vector<mapreduce::Bytes> shards;
  for (const auto& shard : partition.shards)
    shards.push_back(core::serialize_horizontal_shard(shard));
  core::AveragingCoordinator coordinator(split.train.features() + 1);
  const core::GlmParams captured = glm;
  const core::LearnerFactory factory = [captured](
                                           mapreduce::BytesView payload,
                                           std::size_t) {
    return std::make_shared<core::LogisticHorizontalLearner>(
        core::deserialize_horizontal_shard(payload), 3, captured);
  };
  mapreduce::ClusterConfig config;
  config.num_nodes = 4;
  mapreduce::Cluster cluster(config);
  core::run_consensus_on_cluster(cluster, shards, factory, coordinator,
                                 split.train.features() + 1, 3,
                                 glm.as_admm());
  const svm::LinearModel on_cluster{coordinator.z(), coordinator.s()};
  for (std::size_t j = 0; j < reference.model.w.size(); ++j)
    EXPECT_NEAR(on_cluster.w[j], reference.model.w[j], 1e-9);
}

TEST(Plumbing, AveragingCoordinatorMinimumDim) {
  EXPECT_THROW(core::AveragingCoordinator(1), InvalidArgument);
  EXPECT_NO_THROW(core::AveragingCoordinator(2));
}

TEST(Plumbing, StandardGroupIsStableAcrossCalls) {
  const auto a = crypto::DhGroup::standard_group();
  const auto b = crypto::DhGroup::standard_group();
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.g, b.g);
}

TEST(Plumbing, TrainerRejectsEmptyDataset) {
  data::Dataset empty;
  EXPECT_THROW(svm::train_linear_svm(empty, svm::TrainOptions{}),
               InvalidArgument);
}

TEST(Plumbing, KernelModelPredictAllShapes) {
  svm::KernelModel model;
  model.kernel = svm::Kernel::linear();
  model.points = linalg::Matrix{{1.0, 0.0}};
  model.coeffs = {1.0};
  model.b = -0.5;
  const linalg::Matrix queries{{2.0, 0.0}, {0.0, 0.0}};
  const linalg::Vector out = model.predict_all(queries);
  EXPECT_EQ(out[0], 1.0);   // 2 - 0.5 > 0
  EXPECT_EQ(out[1], -1.0);  // 0 - 0.5 < 0
}

}  // namespace
}  // namespace ppml
