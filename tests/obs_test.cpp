// Observability layer: metrics registry semantics, span nesting, exporter
// validity (Chrome trace JSON parsed by a minimal JSON reader below), and
// thread safety of both halves under the mapreduce executor.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/common.h"
#include "mapreduce/executor.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace ppml::obs {
namespace {

// --- minimal JSON syntax checker (no values, just well-formedness) --------
//
// Enough of RFC 8259 to reject anything a real parser would: balanced
// containers, quoted keys, legal literals/numbers/escapes. Used to validate
// the exporters without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- metrics --------------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry registry;
  registry.add("a");
  registry.add("a", 4);
  registry.add("b", -2);
  EXPECT_EQ(registry.counter("a"), 5);
  EXPECT_EQ(registry.counter("b"), -2);
  EXPECT_EQ(registry.counter("missing"), 0);
}

TEST(Metrics, GaugesLastWriteWins) {
  MetricsRegistry registry;
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", -3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), -3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("missing"), 0.0);
}

TEST(Metrics, HistogramBucketing) {
  MetricsRegistry registry;
  registry.declare_histogram("h", {1.0, 10.0, 100.0});
  registry.observe("h", 0.5);    // bucket 0 (<= 1)
  registry.observe("h", 1.0);    // bucket 0 (boundary is inclusive)
  registry.observe("h", 5.0);    // bucket 1
  registry.observe("h", 100.0);  // bucket 2
  registry.observe("h", 1e6);    // overflow
  const HistogramSnapshot snap = registry.histogram("h");
  ASSERT_EQ(snap.upper_bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);  // overflow bucket
  EXPECT_EQ(snap.total, 5u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1e6);
}

TEST(Metrics, HistogramDefaultBucketsOnFirstObserve) {
  MetricsRegistry registry;
  registry.observe("auto", 1e-3);
  const HistogramSnapshot snap = registry.histogram("auto");
  EXPECT_FALSE(snap.upper_bounds.empty());
  EXPECT_EQ(snap.total, 1u);
}

TEST(Metrics, HistogramRedeclareWithDifferentBoundsThrows) {
  MetricsRegistry registry;
  registry.declare_histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.declare_histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.declare_histogram("h", {1.0, 3.0}), Error);
  EXPECT_THROW(registry.declare_histogram("bad", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.declare_histogram("empty", {}), Error);
}

TEST(Metrics, SeriesKeepOrder) {
  MetricsRegistry registry;
  registry.append("s", 3.0);
  registry.append("s", 1.0);
  registry.append("s", 2.0);
  EXPECT_EQ(registry.series("s"), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Metrics, CsvShape) {
  MetricsRegistry registry;
  registry.add("c", 7);
  registry.set_gauge("g", 2.5);
  registry.declare_histogram("h", {1.0});
  registry.observe("h", 0.5);
  registry.append("s", 9.0);
  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,key,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,,7\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le_inf,0\n"), std::string::npos);
  EXPECT_NE(csv.find("series,s,0,9\n"), std::string::npos);
}

TEST(Metrics, RegistryIsThreadSafeUnderParallelFor) {
  MetricsRegistry registry;
  mapreduce::Executor executor(4);
  constexpr std::size_t kTasks = 256;
  executor.parallel_for(kTasks, [&](std::size_t i) {
    registry.add("hits");
    registry.set_gauge("last", static_cast<double>(i));
    registry.observe("values", static_cast<double>(i % 10));
    registry.append("order", static_cast<double>(i));
  });
  EXPECT_EQ(registry.counter("hits"), static_cast<std::int64_t>(kTasks));
  EXPECT_EQ(registry.histogram("values").total, kTasks);
  EXPECT_EQ(registry.series("order").size(), kTasks);
}

// --- tracer ---------------------------------------------------------------

TEST(Trace, SpanNestingAndOrdering) {
  Tracer tracer;
  const auto job = tracer.begin("job", "core");
  const auto iter = tracer.begin("iteration", "core");
  const auto map = tracer.begin("map", "core");
  tracer.end(map);
  const auto reduce = tracer.begin("reduce", "core");
  tracer.end(reduce);
  tracer.end(iter);
  tracer.end(job);

  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[job].parent, Tracer::kInvalidSpan);
  EXPECT_EQ(records[job].depth, 0u);
  EXPECT_EQ(records[iter].parent, job);
  EXPECT_EQ(records[iter].depth, 1u);
  EXPECT_EQ(records[map].parent, iter);
  EXPECT_EQ(records[map].depth, 2u);
  EXPECT_EQ(records[reduce].parent, iter);  // sibling of map, not child
  EXPECT_EQ(records[reduce].depth, 2u);

  // Containment: children start/end within their parent.
  EXPECT_GE(records[map].start_ns, records[iter].start_ns);
  EXPECT_LE(records[map].end_ns, records[iter].end_ns);
  EXPECT_LE(records[map].end_ns, records[reduce].start_ns);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Trace, ArgsAndOpenSpans) {
  Tracer tracer;
  const auto id = tracer.begin("phase");
  tracer.set_arg(id, "bytes", 128.0);
  EXPECT_EQ(tracer.open_span_count(), 1u);
  const auto records = tracer.records();
  ASSERT_EQ(records[id].args.size(), 1u);
  EXPECT_EQ(records[id].args[0].first, "bytes");
  EXPECT_DOUBLE_EQ(records[id].args[0].second, 128.0);
  EXPECT_EQ(records[id].end_ns, 0u);  // still open
  tracer.end(id);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Trace, ChromeExportIsValidJson) {
  Tracer tracer;
  const auto job = tracer.begin("job \"quoted\"\n", "cat\\egory");
  const auto iter = tracer.begin("iteration");
  tracer.set_arg(iter, "round", 0.0);
  tracer.end(iter);
  tracer.end(job);
  const auto open = tracer.begin("still-open");
  (void)open;

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  // Open spans are exported too (ending "now"), so partial traces load.
  EXPECT_NE(text.find("still-open"), std::string::npos);
}

TEST(Trace, TracerIsThreadSafeUnderParallelFor) {
  Tracer tracer;
  mapreduce::Executor executor(4);
  constexpr std::size_t kTasks = 128;
  executor.parallel_for(kTasks, [&](std::size_t i) {
    const auto outer = tracer.begin("task");
    const auto inner = tracer.begin("step");
    tracer.set_arg(inner, "i", static_cast<double>(i));
    tracer.end(inner);
    tracer.end(outer);
  });
  EXPECT_EQ(tracer.span_count(), 2 * kTasks);
  EXPECT_EQ(tracer.open_span_count(), 0u);
  // Every "step" nests under a "task" on its own thread.
  for (const auto& record : tracer.records()) {
    if (record.name != "step") continue;
    ASSERT_NE(record.parent, Tracer::kInvalidSpan);
    EXPECT_EQ(record.depth, 1u);
  }
}

// --- reports --------------------------------------------------------------

TEST(Report, AggregateSpansMedians) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) tracer.end(tracer.begin("phase"));
  const auto open = tracer.begin("phase");  // open: excluded from stats
  (void)open;
  const auto stats = aggregate_spans(tracer);
  ASSERT_EQ(stats.count("phase"), 1u);
  EXPECT_EQ(stats.at("phase").count, 3u);
  EXPECT_GE(stats.at("phase").median_s, 0.0);
  EXPECT_LE(stats.at("phase").min_s, stats.at("phase").median_s);
  EXPECT_LE(stats.at("phase").median_s, stats.at("phase").max_s);
}

TEST(Report, JsonReportsAreValid) {
  Tracer tracer;
  tracer.end(tracer.begin("job"));
  MetricsRegistry registry;
  registry.add("c", 3);
  registry.append("s", 1.25);
  std::ostringstream os;
  JsonValue report = JsonValue::object();
  report.set("phases", span_stats_json(tracer));
  report.set("metrics", metrics_json(registry));
  report.dump(os, 2);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// --- global session -------------------------------------------------------

TEST(Session, HelpersAreNoOpsWhenUninstalled) {
  ASSERT_FALSE(enabled());
  count("never");
  gauge("never", 1.0);
  observe("never", 1.0);
  append("never", 1.0);
  Span span("never", "off");
  span.arg("k", 1.0);
  EXPECT_FALSE(span.active());
}

TEST(Session, InstallsAndUninstallsBothHalves) {
  Tracer tracer;
  MetricsRegistry registry;
  {
    Session session(&tracer, &registry);
    EXPECT_TRUE(enabled());
    count("hits", 2);
    { Span span("unit", "test"); span.arg("x", 1.0); }
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(registry.counter("hits"), 2);
  EXPECT_EQ(tracer.span_count(), 1u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Session, NestedInstallThrows) {
  Tracer tracer;
  MetricsRegistry registry;
  Session session(&tracer, &registry);
  EXPECT_THROW(install(&tracer, &registry), Error);
}

}  // namespace
}  // namespace ppml::obs
