// Observability layer: metrics registry semantics, span nesting, exporter
// validity (Chrome trace JSON parsed by a minimal JSON reader below), and
// thread safety of both halves under the mapreduce executor.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/common.h"
#include "mapreduce/executor.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace ppml::obs {
namespace {

// --- minimal JSON syntax checker (no values, just well-formedness) --------
//
// Enough of RFC 8259 to reject anything a real parser would: balanced
// containers, quoted keys, legal literals/numbers/escapes. Used to validate
// the exporters without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- metrics --------------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry registry;
  registry.add("a");
  registry.add("a", 4);
  registry.add("b", -2);
  EXPECT_EQ(registry.counter("a"), 5);
  EXPECT_EQ(registry.counter("b"), -2);
  EXPECT_EQ(registry.counter("missing"), 0);
}

TEST(Metrics, GaugesLastWriteWins) {
  MetricsRegistry registry;
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", -3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), -3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("missing"), 0.0);
}

TEST(Metrics, HistogramBucketing) {
  MetricsRegistry registry;
  registry.declare_histogram("h", {1.0, 10.0, 100.0});
  registry.observe("h", 0.5);    // bucket 0 (<= 1)
  registry.observe("h", 1.0);    // bucket 0 (boundary is inclusive)
  registry.observe("h", 5.0);    // bucket 1
  registry.observe("h", 100.0);  // bucket 2
  registry.observe("h", 1e6);    // overflow
  const HistogramSnapshot snap = registry.histogram("h");
  ASSERT_EQ(snap.upper_bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);  // overflow bucket
  EXPECT_EQ(snap.total, 5u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1e6);
}

TEST(Metrics, HistogramDefaultBucketsOnFirstObserve) {
  MetricsRegistry registry;
  registry.observe("auto", 1e-3);
  const HistogramSnapshot snap = registry.histogram("auto");
  EXPECT_FALSE(snap.upper_bounds.empty());
  EXPECT_EQ(snap.total, 1u);
}

TEST(Metrics, HistogramRedeclareWithDifferentBoundsThrows) {
  MetricsRegistry registry;
  registry.declare_histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.declare_histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.declare_histogram("h", {1.0, 3.0}), Error);
  EXPECT_THROW(registry.declare_histogram("bad", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.declare_histogram("empty", {}), Error);
}

TEST(Metrics, SeriesKeepOrder) {
  MetricsRegistry registry;
  registry.append("s", 3.0);
  registry.append("s", 1.0);
  registry.append("s", 2.0);
  EXPECT_EQ(registry.series("s"), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Metrics, CsvShape) {
  MetricsRegistry registry;
  registry.add("c", 7);
  registry.set_gauge("g", 2.5);
  registry.declare_histogram("h", {1.0});
  registry.observe("h", 0.5);
  registry.append("s", 9.0);
  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,key,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,,7\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le_inf,0\n"), std::string::npos);
  EXPECT_NE(csv.find("series,s,0,9\n"), std::string::npos);
}

TEST(Metrics, RegistryIsThreadSafeUnderParallelFor) {
  MetricsRegistry registry;
  mapreduce::Executor executor(4);
  constexpr std::size_t kTasks = 256;
  executor.parallel_for(kTasks, [&](std::size_t i) {
    registry.add("hits");
    registry.set_gauge("last", static_cast<double>(i));
    registry.observe("values", static_cast<double>(i % 10));
    registry.append("order", static_cast<double>(i));
  });
  EXPECT_EQ(registry.counter("hits"), static_cast<std::int64_t>(kTasks));
  EXPECT_EQ(registry.histogram("values").total, kTasks);
  EXPECT_EQ(registry.series("order").size(), kTasks);
}

// --- tracer ---------------------------------------------------------------

TEST(Trace, SpanNestingAndOrdering) {
  Tracer tracer;
  const auto job = tracer.begin("job", "core");
  const auto iter = tracer.begin("iteration", "core");
  const auto map = tracer.begin("map", "core");
  tracer.end(map);
  const auto reduce = tracer.begin("reduce", "core");
  tracer.end(reduce);
  tracer.end(iter);
  tracer.end(job);

  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[job].parent, Tracer::kInvalidSpan);
  EXPECT_EQ(records[job].depth, 0u);
  EXPECT_EQ(records[iter].parent, job);
  EXPECT_EQ(records[iter].depth, 1u);
  EXPECT_EQ(records[map].parent, iter);
  EXPECT_EQ(records[map].depth, 2u);
  EXPECT_EQ(records[reduce].parent, iter);  // sibling of map, not child
  EXPECT_EQ(records[reduce].depth, 2u);

  // Containment: children start/end within their parent.
  EXPECT_GE(records[map].start_ns, records[iter].start_ns);
  EXPECT_LE(records[map].end_ns, records[iter].end_ns);
  EXPECT_LE(records[map].end_ns, records[reduce].start_ns);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Trace, ArgsAndOpenSpans) {
  Tracer tracer;
  const auto id = tracer.begin("phase");
  tracer.set_arg(id, "bytes", 128.0);
  EXPECT_EQ(tracer.open_span_count(), 1u);
  const auto records = tracer.records();
  ASSERT_EQ(records[id].args.size(), 1u);
  EXPECT_EQ(records[id].args[0].first, "bytes");
  EXPECT_DOUBLE_EQ(records[id].args[0].second, 128.0);
  EXPECT_EQ(records[id].end_ns, 0u);  // still open
  tracer.end(id);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Trace, ChromeExportIsValidJson) {
  Tracer tracer;
  const auto job = tracer.begin("job \"quoted\"\n", "cat\\egory");
  const auto iter = tracer.begin("iteration");
  tracer.set_arg(iter, "round", 0.0);
  tracer.end(iter);
  tracer.end(job);
  const auto open = tracer.begin("still-open");
  (void)open;

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  // Open spans are exported too (ending "now"), so partial traces load.
  EXPECT_NE(text.find("still-open"), std::string::npos);
}

TEST(Trace, TracerIsThreadSafeUnderParallelFor) {
  Tracer tracer;
  mapreduce::Executor executor(4);
  constexpr std::size_t kTasks = 128;
  executor.parallel_for(kTasks, [&](std::size_t i) {
    const auto outer = tracer.begin("task");
    const auto inner = tracer.begin("step");
    tracer.set_arg(inner, "i", static_cast<double>(i));
    tracer.end(inner);
    tracer.end(outer);
  });
  EXPECT_EQ(tracer.span_count(), 2 * kTasks);
  EXPECT_EQ(tracer.open_span_count(), 0u);
  // Every "step" nests under a "task" on its own thread.
  for (const auto& record : tracer.records()) {
    if (record.name != "step") continue;
    ASSERT_NE(record.parent, Tracer::kInvalidSpan);
    EXPECT_EQ(record.depth, 1u);
  }
}

// --- reports --------------------------------------------------------------

TEST(Report, AggregateSpansMedians) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) tracer.end(tracer.begin("phase"));
  const auto open = tracer.begin("phase");  // open: excluded from stats
  (void)open;
  const auto stats = aggregate_spans(tracer);
  ASSERT_EQ(stats.count("phase"), 1u);
  EXPECT_EQ(stats.at("phase").count, 3u);
  EXPECT_GE(stats.at("phase").median_s, 0.0);
  EXPECT_LE(stats.at("phase").min_s, stats.at("phase").median_s);
  EXPECT_LE(stats.at("phase").median_s, stats.at("phase").max_s);
}

TEST(Report, JsonReportsAreValid) {
  Tracer tracer;
  tracer.end(tracer.begin("job"));
  MetricsRegistry registry;
  registry.add("c", 3);
  registry.append("s", 1.25);
  std::ostringstream os;
  JsonValue report = JsonValue::object();
  report.set("phases", span_stats_json(tracer));
  report.set("metrics", metrics_json(registry));
  report.dump(os, 2);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// --- global session -------------------------------------------------------

TEST(Session, HelpersAreNoOpsWhenUninstalled) {
  ASSERT_FALSE(enabled());
  count("never");
  gauge("never", 1.0);
  observe("never", 1.0);
  append("never", 1.0);
  Span span("never", "off");
  span.arg("k", 1.0);
  EXPECT_FALSE(span.active());
}

TEST(Session, InstallsAndUninstallsBothHalves) {
  Tracer tracer;
  MetricsRegistry registry;
  {
    Session session(&tracer, &registry);
    EXPECT_TRUE(enabled());
    count("hits", 2);
    { Span span("unit", "test"); span.arg("x", 1.0); }
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(registry.counter("hits"), 2);
  EXPECT_EQ(tracer.span_count(), 1u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Session, NestedInstallThrows) {
  Tracer tracer;
  MetricsRegistry registry;
  Session session(&tracer, &registry);
  EXPECT_THROW(install(&tracer, &registry), Error);
}

// --- party attribution ----------------------------------------------------

TEST(Party, ScopeSavesAndRestores) {
  EXPECT_EQ(current_party(), kNoParty);
  {
    PartyScope outer(std::size_t{3});
    EXPECT_EQ(current_party(), 3);
    {
      PartyScope inner(kReducerParty);
      EXPECT_EQ(current_party(), kReducerParty);
    }
    EXPECT_EQ(current_party(), 3);
  }
  EXPECT_EQ(current_party(), kNoParty);
  EXPECT_EQ(party_label(0), "0");
  EXPECT_EQ(party_label(kReducerParty), "reducer");
  EXPECT_EQ(party_label(kNoParty), "unattributed");
}

TEST(Party, SpansLatchThePartyAtBegin) {
  Tracer tracer;
  Tracer::SpanId tagged;
  {
    PartyScope scope(std::size_t{2});
    tagged = tracer.begin("work");
  }
  tracer.end(tagged);  // closing outside the scope must not re-read it
  const auto plain = tracer.begin("other");
  tracer.end(plain);
  const auto records = tracer.records();
  EXPECT_EQ(records[tagged].party, 2);
  EXPECT_EQ(records[plain].party, kNoParty);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"party\": \"2\""), std::string::npos);
}

TEST(Party, ShardSumsEqualGlobalUnderConcurrentMixedScopes) {
  MetricsRegistry registry;
  mapreduce::Executor executor(4);
  constexpr std::size_t kTasks = 96;
  executor.parallel_for(kTasks, [&](std::size_t i) {
    if (i % 5 == 0) {
      registry.add("net.bytes", 7);  // unattributed shard
    } else {
      PartyScope scope(i % 3);
      registry.add("net.bytes", static_cast<std::int64_t>(i));
      registry.add("crypto.masks", 2);
    }
  });
  for (const auto& [name, shards] : registry.party_counters()) {
    std::int64_t sum = 0;
    for (const auto& [party, value] : shards) sum += value;
    EXPECT_EQ(sum, registry.counter(name)) << name;
  }
  // Spot-check a shard is reachable by tag too.
  EXPECT_GT(registry.party_counter("crypto.masks", 1), 0);
  EXPECT_GT(registry.party_counter("net.bytes", kNoParty), 0);
  EXPECT_EQ(registry.party_counter("net.bytes", kReducerParty), 0);
}

// --- flow events ----------------------------------------------------------

TEST(Trace, FlowEventsExportAndRoundTrip) {
  Tracer tracer;
  const std::uint64_t flow_id = tracer.new_flow_id();
  EXPECT_NE(flow_id, 0u);
  {
    const auto producer = tracer.begin("map_task");
    tracer.flow('s', flow_id, "contribution");
    tracer.end(producer);
  }
  tracer.flow('t', flow_id, "contribution");
  {
    const auto consumer = tracer.begin("reduce");
    tracer.flow('f', flow_id, "contribution");
    tracer.end(consumer);
  }
  const auto flows = tracer.flows();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0].phase, 's');
  EXPECT_EQ(flows[1].phase, 't');
  EXPECT_EQ(flows[2].phase, 'f');
  for (const auto& f : flows) EXPECT_EQ(f.id, flow_id);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
  // Binding-point "enclosing slice" is what makes the arrows attach to the
  // producer/consumer spans rather than to whatever slice follows them.
  EXPECT_NE(text.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\": \"flow\""), std::string::npos);
}

TEST(Trace, FlowValidationRejectsBadPhaseAndZeroId) {
  Tracer tracer;
  EXPECT_THROW(tracer.flow('x', 1, "bad"), Error);
  EXPECT_THROW(tracer.flow('s', 0, "bad"), Error);
}

TEST(Trace, OpenSpanExportNeverUnderflows) {
  // Regression: write_chrome_trace used to snapshot "now" before taking the
  // lock, so a span begun in between had start_ns > now and its unsigned
  // duration wrapped to ~5e11 seconds. The clamp keeps every exported dur
  // finite and non-negative; 1e12 us (~11 days) is far above any real span
  // and far below the wrapped value (~1.8e13 us).
  Tracer tracer;
  const auto open = tracer.begin("open-span");
  (void)open;
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  std::size_t pos = 0;
  std::size_t durs = 0;
  while ((pos = text.find("\"dur\": ", pos)) != std::string::npos) {
    pos += 7;
    EXPECT_NE(text[pos], '-');
    const double dur = std::stod(text.substr(pos));
    EXPECT_LT(dur, 1e12) << "wrapped duration in export";
    ++durs;
  }
  EXPECT_GE(durs, 1u);
}

// --- histogram quantiles --------------------------------------------------

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  registry.declare_histogram("lat", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) registry.observe("lat", 0.5);   // bucket <=1
  for (int i = 0; i < 40; ++i) registry.observe("lat", 3.0);   // bucket <=4
  for (int i = 0; i < 10; ++i) registry.observe("lat", 16.0);  // overflow
  const HistogramSnapshot snap = registry.histogram("lat");
  const double p50 = snap.quantile(0.50);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 1.0);  // rank 50 falls at the top of the first bucket
  const double p95 = snap.quantile(0.95);
  EXPECT_GE(p95, 8.0);  // rank 95 lands in the overflow bucket
  EXPECT_LE(p95, 16.0);  // clamped by the observed max
  // Degenerate cases: empty histogram and out-of-range q stay finite.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
  EXPECT_LE(snap.quantile(0.0), snap.quantile(1.0));
}

TEST(Metrics, CsvCarriesQuantileAndPartyRows) {
  MetricsRegistry registry;
  registry.observe("lat", 2.0);
  {
    PartyScope scope(std::size_t{1});
    registry.add("net.bytes", 64);
  }
  registry.add("unsharded.count", 1);  // only the kNoParty shard: no rows
  std::ostringstream os;
  registry.write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("histogram,lat,p50,"), std::string::npos);
  EXPECT_NE(text.find("histogram,lat,p95,"), std::string::npos);
  EXPECT_NE(text.find("histogram,lat,p99,"), std::string::npos);
  EXPECT_NE(text.find("party_counter,net.bytes,1,64"), std::string::npos);
  EXPECT_EQ(text.find("party_counter,unsharded.count"), std::string::npos);
}

// --- flight recorder ------------------------------------------------------

TEST(FlightRecorder, RingWrapsAtCapacityKeepingNewest) {
  FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i)
    recorder.record(FlightEventKind::kMark, "e" + std::to_string(i),
                    static_cast<double>(i));
  EXPECT_EQ(recorder.recorded(), 20u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].seq, 12 + k);  // oldest surviving first
    EXPECT_EQ(std::string(events[k].label), "e" + std::to_string(12 + k));
  }
}

TEST(FlightRecorder, DumpJsonIsValidAndCarriesReason) {
  FlightRecorder recorder(16);
  {
    PartyScope scope(std::size_t{2});
    recorder.record(FlightEventKind::kFault, "drop:contribution", 128.0,
                    /*trace_id=*/42);
  }
  std::ostringstream os;
  recorder.dump_json(os, "unit_test");
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"fault\""), std::string::npos);
  EXPECT_NE(text.find("\"party\": \"2\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_id\": 42"), std::string::npos);
}

TEST(FlightRecorder, SessionFeedsSpanCloseAndCounterEvents) {
  Tracer tracer;
  MetricsRegistry registry;
  FlightRecorder recorder(64);
  {
    Session session(&tracer, &registry, &recorder);
    PartyScope scope(std::size_t{1});
    { Span span("map_task", "mapreduce"); }
    count("net.bytes", 9);
    append("admm.primal_residual_sq", 0.5);
  }
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kSpanClose);
  EXPECT_EQ(std::string(events[0].label), "map_task");
  EXPECT_EQ(events[0].party, 1);
  EXPECT_EQ(events[1].kind, FlightEventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[1].value, 9.0);
  EXPECT_EQ(events[2].kind, FlightEventKind::kSeries);
}

TEST(FlightRecorder, CheckFailureHookDumpsTheRing) {
  Tracer tracer;
  MetricsRegistry registry;
  FlightRecorder recorder(32);
  const std::string path = "obs_test_check_dump.json";
  std::remove(path.c_str());
  recorder.arm_auto_dump(path);
  {
    Session session(&tracer, &registry, &recorder);
    recorder.record(FlightEventKind::kMark, "before_failure");
    EXPECT_THROW(PPML_CHECK(false, "synthetic check failure"), Error);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "check failure did not dump to the armed path";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("ppml_check_failure"), std::string::npos);
  // The full what() is longer than the fixed 80-char label; the dump keeps
  // the (truncated) head, which is enough to identify the check site.
  EXPECT_NE(text.find("PPML_CHECK failed"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"check_failure\""), std::string::npos);
  EXPECT_NE(text.find("before_failure"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TruncatesLongLabelsAndRejectsZeroCapacity) {
  EXPECT_THROW(FlightRecorder(0), Error);
  FlightRecorder recorder(4);
  const std::string longer(200, 'x');
  recorder.record(FlightEventKind::kMark, longer);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].label), std::string(79, 'x'));
}

}  // namespace
}  // namespace ppml::obs
