// Bit-identity contract of the runtime-dispatched SIMD microkernels
// (linalg/microkernel.h): every ISA level must produce EXACTLY the same
// bits as the scalar loops and the naive single-threaded oracles, for every
// shape — including the awkward ones (remainder columns, k = 1, row counts
// not divisible by the vector width). EXPECT_EQ on doubles throughout; any
// tolerance here would defeat the point of the contract.
//
// The suite is registered twice in ctest: once plain (dispatch resolves to
// the best ISA the machine has) and once with PPML_FORCE_ISA=scalar in the
// environment, so the scalar fallback paths stay exercised on AVX2 hosts.
#include "linalg/microkernel.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "linalg/blas.h"
#include "linalg/common.h"
#include "svm/kernel.h"

namespace {

using ppml::InvalidArgument;
using ppml::linalg::Isa;
using ppml::linalg::Matrix;
using ppml::linalg::Vector;
namespace linalg = ppml::linalg;
namespace svm = ppml::svm;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = normal(rng);
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  Vector v(n);
  for (double& e : v) e = normal(rng);
  return v;
}

void expect_matrices_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
}

/// Pins the dispatcher to `isa` for the enclosing scope (skips the body of
/// a test when the level is unavailable — e.g. avx2 on a non-x86 build).
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : available_(linalg::isa_available(isa)) {
    if (available_) linalg::force_isa(isa);
  }
  ~ScopedIsa() { linalg::clear_forced_isa(); }
  bool available() const { return available_; }

 private:
  bool available_;
};

// Shapes chosen to hit every remainder path: 4-wide AVX2 lanes leave
// 1/2/3-row tails at rows % 4 != 0, k = 1 exercises the degenerate inner
// loop, 65 x 257 crosses the blocking tile boundaries off-by-one.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1}, {3, 1, 5}, {4, 4, 4},  {5, 7, 3},
    {8, 16, 8}, {17, 9, 13}, {65, 257, 31}, {33, 64, 66},
};
const std::uint64_t kSeeds[] = {11, 29, 47};

class MicrokernelIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MicrokernelIdentity, GemmMatchesNaiveOnEveryIsa) {
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, GetParam());
    const Matrix b = random_matrix(s.k, s.n, GetParam() ^ 0xabcdULL);
    const Matrix oracle = linalg::gemm_naive(a, b);
    for (Isa isa : {Isa::kScalar, Isa::kAvx2}) {
      ScopedIsa pin(isa);
      if (!pin.available()) continue;
      expect_matrices_identical(linalg::gemm(a, b), oracle);
    }
  }
}

TEST_P(MicrokernelIdentity, GemmNtMatchesNaiveOnEveryIsa) {
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, GetParam());
    const Matrix b = random_matrix(s.n, s.k, GetParam() ^ 0x77ULL);
    const Matrix oracle = linalg::gemm_nt_naive(a, b);
    for (Isa isa : {Isa::kScalar, Isa::kAvx2}) {
      ScopedIsa pin(isa);
      if (!pin.available()) continue;
      expect_matrices_identical(linalg::gemm_nt(a, b), oracle);
    }
  }
}

TEST_P(MicrokernelIdentity, SyrkAndGramsMatchScalarOnEveryIsa) {
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, GetParam() ^ 0x5151ULL);
    Matrix syrk_scalar, gram_scalar;
    Vector gemv_scalar;
    const Vector x = random_vector(s.k, GetParam() ^ 0x99ULL);
    {
      ScopedIsa pin(Isa::kScalar);
      syrk_scalar = linalg::syrk(a);
      gram_scalar = linalg::gram_at_a(a);
      gemv_scalar = linalg::gemv(a, x);
    }
    for (Isa isa : {Isa::kAvx2}) {
      ScopedIsa pin(isa);
      if (!pin.available()) continue;
      expect_matrices_identical(linalg::syrk(a), syrk_scalar);
      expect_matrices_identical(linalg::gram_at_a(a), gram_scalar);
      const Vector got = linalg::gemv(a, x);
      ASSERT_EQ(got.size(), gemv_scalar.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], gemv_scalar[i]);
    }
  }
}

TEST_P(MicrokernelIdentity, KernelRowsMatchPairwiseOracleOnEveryIsa) {
  const svm::Kernel kernels[] = {
      svm::Kernel::rbf(0.37),
      svm::Kernel::polynomial(3, 0.5, 1.25),
      svm::Kernel::linear(),
      svm::Kernel::sigmoid(0.11, -0.2),
  };
  for (const Shape& s : kShapes) {
    const Matrix b = random_matrix(s.m, s.k, GetParam() ^ 0xbeefULL);
    const Vector x = random_vector(s.k, GetParam() ^ 0x33ULL);
    for (const svm::Kernel& kernel : kernels) {
      // Pairwise oracle: one scalar kernel evaluation per row, no strip
      // batching anywhere.
      Vector oracle(b.rows());
      for (std::size_t r = 0; r < b.rows(); ++r)
        oracle[r] = kernel(x, b.row(r));
      for (Isa isa : {Isa::kScalar, Isa::kAvx2}) {
        ScopedIsa pin(isa);
        if (!pin.available()) continue;
        const Vector got = svm::kernel_row(kernel, x, b);
        ASSERT_EQ(got.size(), oracle.size());
        for (std::size_t r = 0; r < got.size(); ++r)
          EXPECT_EQ(got[r], oracle[r]) << kernel.describe() << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MultiSeed, MicrokernelIdentity,
                         ::testing::ValuesIn(kSeeds));

// ------------------------------------------------------------- dispatcher

TEST(MicrokernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(linalg::isa_available(Isa::kScalar));
  // detected_isa() must itself be runnable.
  EXPECT_TRUE(linalg::isa_available(linalg::detected_isa()));
}

TEST(MicrokernelDispatch, ForceIsaPinsTheActiveTable) {
  {
    ScopedIsa pin(Isa::kScalar);
    EXPECT_EQ(linalg::active_isa(), Isa::kScalar);
    EXPECT_STREQ(linalg::active_isa_name(), "scalar");
    EXPECT_EQ(linalg::microkernels().isa, Isa::kScalar);
  }
  if (linalg::isa_available(Isa::kAvx2)) {
    ScopedIsa pin(Isa::kAvx2);
    EXPECT_EQ(linalg::active_isa(), Isa::kAvx2);
    EXPECT_STREQ(linalg::active_isa_name(), "avx2");
    EXPECT_EQ(linalg::microkernels().isa, Isa::kAvx2);
  }
}

TEST(MicrokernelDispatch, ClearRestoresAutomaticResolution) {
  linalg::force_isa(Isa::kScalar);
  linalg::clear_forced_isa();
  // With no force and no env override the probe picks the best level.
  if (std::getenv("PPML_FORCE_ISA") == nullptr) {
    EXPECT_EQ(linalg::active_isa(), linalg::detected_isa());
  }
}

TEST(MicrokernelDispatch, EnvOverrideIsHonored) {
  // The ctest forced-scalar variant runs this whole binary with
  // PPML_FORCE_ISA=scalar; pin that the dispatcher actually obeyed it.
  if (const char* forced = std::getenv("PPML_FORCE_ISA")) {
    linalg::clear_forced_isa();
    const auto parsed = linalg::parse_isa(forced);
    ASSERT_TRUE(parsed.has_value()) << "bad PPML_FORCE_ISA: " << forced;
    EXPECT_EQ(linalg::active_isa(), *parsed);
  } else {
    GTEST_SKIP() << "PPML_FORCE_ISA not set in this variant";
  }
}

TEST(MicrokernelDispatch, ForceUnavailableIsaThrows) {
  if (linalg::isa_available(Isa::kAvx2))
    GTEST_SKIP() << "avx2 available here; nothing is unavailable to force";
  EXPECT_THROW(linalg::force_isa(Isa::kAvx2), InvalidArgument);
}

TEST(MicrokernelDispatch, ParseIsaRoundTrips) {
  EXPECT_EQ(linalg::parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(linalg::parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(linalg::parse_isa("neon"), std::nullopt);
  EXPECT_EQ(linalg::parse_isa(""), std::nullopt);
  EXPECT_STREQ(linalg::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(linalg::isa_name(Isa::kAvx2), "avx2");
  EXPECT_EQ(linalg::parse_isa(linalg::isa_name(Isa::kScalar)), Isa::kScalar);
  EXPECT_EQ(linalg::parse_isa(linalg::isa_name(Isa::kAvx2)), Isa::kAvx2);
}

}  // namespace
