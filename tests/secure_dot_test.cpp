#include <gtest/gtest.h>

#include <numeric>

#include "baselines/smc_svm.h"
#include "crypto/secure_dot.h"
#include "data/generators.h"
#include "data/partition.h"
#include "data/standardize.h"
#include "linalg/blas.h"
#include "svm/metrics.h"

namespace ppml::crypto {
namespace {

TEST(SecureDot, MatchesPlainDotProduct) {
  const FixedPointCodec codec(16, 2);
  Xoshiro256 rng(1);
  const std::vector<double> x{1.5, -2.25, 0.5, 3.0};
  const std::vector<double> y{-0.5, 1.0, 2.0, 0.25};
  const double secure = secure_dot_product(x, y, codec, rng);
  EXPECT_NEAR(secure, linalg::dot(x, y), 1e-3);
}

class SecureDotRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecureDotRandom, ExactUpToQuantization) {
  const FixedPointCodec codec(16, 2);
  Xoshiro256 rng(GetParam());
  std::vector<double> x(32);
  std::vector<double> y(32);
  for (std::size_t i = 0; i < 32; ++i) {
    x[i] = rng.next_double() * 8.0 - 4.0;
    y[i] = rng.next_double() * 8.0 - 4.0;
  }
  const double secure = secure_dot_product(x, y, codec, rng);
  // Quantization of 32 products with 16 fractional bits each side.
  EXPECT_NEAR(secure, linalg::dot(x, y), 32.0 * 8.0 / (1 << 16));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureDotRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SecureDot, StatsCountBytes) {
  const FixedPointCodec codec(16, 2);
  Xoshiro256 rng(2);
  SecureDotStats stats;
  const std::vector<double> x(10, 1.0);
  secure_dot_product(x, x, codec, rng, &stats);
  EXPECT_EQ(stats.products, 1u);
  // server: Ra + ra to Alice, Rb + rb to Bob = 2*dim + 2 words.
  EXPECT_EQ(stats.bytes_server_to_parties, 8u * 22u);
  // parties: x^ (dim) + y^ (dim) + w = 2*dim + 1 words.
  EXPECT_EQ(stats.bytes_between_parties, 8u * 21u);
  EXPECT_EQ(stats.total_bytes(), 8u * 43u);
}

TEST(SecureDot, MaskedVectorsDifferFromPlain) {
  // What Bob receives must not equal Alice's plain encoding (and vice
  // versa) — replicate the protocol messages manually.
  const FixedPointCodec codec(16, 2);
  Xoshiro256 rng(3);
  const DotCorrelation corr = generate_dot_correlation(4, rng);
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  auto x_masked = codec.encode_vector(x);
  ring_add_inplace(x_masked, corr.ra);
  EXPECT_NE(x_masked, codec.encode_vector(x));
}

TEST(SecureDot, CorrelationIdentityHolds) {
  Xoshiro256 rng(4);
  const DotCorrelation corr = generate_dot_correlation(16, rng);
  std::uint64_t dot = 0;
  for (std::size_t i = 0; i < 16; ++i) dot += corr.ra[i] * corr.rb[i];
  EXPECT_EQ(corr.ra_scalar + corr.rb_scalar, dot);
}

TEST(SecureGram, MatchesPlainGram) {
  const FixedPointCodec codec(16, 2);
  Xoshiro256 rng(5);
  linalg::Matrix rows{{1.0, 0.5}, {0.25, -1.0}, {2.0, 1.5}, {-0.5, 0.75}};
  const std::vector<std::size_t> owner{0, 0, 1, 1};
  SecureDotStats stats;
  const linalg::Matrix gram =
      secure_gram_matrix(rows, owner, codec, rng, &stats);
  const linalg::Matrix expected = linalg::gram_a_at(rows);
  EXPECT_TRUE(linalg::allclose(gram, expected, 1e-3));
  // Only cross-owner pairs run the protocol: (0,2),(0,3),(1,2),(1,3).
  EXPECT_EQ(stats.products, 4u);
}

}  // namespace
}  // namespace ppml::crypto

namespace ppml::baselines {
namespace {

data::SplitDataset cancer_split() {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  return split;
}

TEST(SmcSvm, MatchesPlainCentralizedAccuracy) {
  const auto split = cancer_split();
  // Small subset: the SMC Gram is O(N^2) protocol runs.
  std::vector<std::size_t> rows(120);
  std::iota(rows.begin(), rows.end(), 0);
  data::Dataset small = split.train.subset(rows);
  const auto partition = data::partition_horizontally(small, 3, 5);

  SmcSvmOptions options;
  options.train.c = 10.0;
  const SmcSvmResult result = train_smc_linear_svm(partition, options);
  const double smc_acc = result.accuracy_on(split.test);

  svm::TrainOptions central;
  central.c = 10.0;
  const auto reference = svm::train_linear_svm(small, central);
  const double central_acc =
      svm::accuracy(reference.predict_all(split.test.x), split.test.y);
  EXPECT_NEAR(smc_acc, central_acc, 0.03);
  EXPECT_GT(result.protocol.products, 0u);
  EXPECT_GT(result.protocol.total_bytes(), 0u);
}

TEST(SmcSvm, ProtocolCostScalesQuadratically) {
  const auto split = cancer_split();
  const auto run = [&](std::size_t n) {
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0);
    const auto partition =
        data::partition_horizontally(split.train.subset(rows), 2, 3);
    SmcSvmOptions options;
    options.train.c = 1.0;
    return train_smc_linear_svm(partition, options).protocol;
  };
  const auto small = run(40);
  const auto large = run(80);
  // Cross-owner pairs ~ (N/2)^2: doubling N should ~4x the protocol runs.
  EXPECT_GT(large.products, 3 * small.products);
  EXPECT_LT(large.products, 5 * small.products);
}

TEST(SmcSvm, KernelReconstructionAttackRecoversVictimRow) {
  // The paper's §V warning, demonstrated: an adversary with k or more of
  // its own rows plus the victim's Gram column recovers the victim's
  // features exactly.
  const auto split = cancer_split();
  const std::size_t k = split.train.features();
  std::vector<std::size_t> adversary_rows(k + 5);
  std::iota(adversary_rows.begin(), adversary_rows.end(), 0);
  const data::Dataset adversary = split.train.subset(adversary_rows);

  const auto victim = split.train.x.row(100);
  linalg::Vector gram_column(adversary.size());
  for (std::size_t i = 0; i < adversary.size(); ++i)
    gram_column[i] = linalg::dot(adversary.x.row(i), victim);

  const linalg::Vector reconstructed =
      kernel_reconstruction_attack(adversary.x, gram_column);
  ASSERT_EQ(reconstructed.size(), k);
  for (std::size_t j = 0; j < k; ++j)
    EXPECT_NEAR(reconstructed[j], victim[j], 1e-6);
}

TEST(SmcSvm, AttackNeedsEnoughKnownRows) {
  linalg::Matrix known(3, 5);  // 3 rows < 5 features
  linalg::Vector column(3, 0.0);
  EXPECT_THROW(kernel_reconstruction_attack(known, column), InvalidArgument);
}

}  // namespace
}  // namespace ppml::baselines
