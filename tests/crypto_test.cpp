#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "crypto/dh.h"
#include "crypto/fixed_point.h"
#include "crypto/modmath.h"
#include "crypto/paillier.h"
#include "crypto/prng.h"
#include "crypto/secret_sharing.h"
#include "crypto/secure_sum.h"

namespace ppml::crypto {
namespace {

TEST(Prng, SplitMix64KnownVector) {
  // Reference values for seed 1234567 (from the SplitMix64 reference code).
  SplitMix64 rng(1234567);
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.next();
  EXPECT_NE(a, b);
  // Determinism.
  SplitMix64 rng2(1234567);
  EXPECT_EQ(rng2.next(), a);
  EXPECT_EQ(rng2.next(), b);
}

TEST(Prng, XoshiroDeterministicAndWellSpread) {
  Xoshiro256 rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in 1000 draws
  Xoshiro256 rng2(42);
  Xoshiro256 rng3(43);
  EXPECT_EQ(Xoshiro256(42).next(), rng2.next());
  EXPECT_NE(rng2.next(), rng3.next());
}

TEST(Prng, XoshiroDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ChaChaRfc8439BlockOne) {
  // RFC 8439 §2.3.2 test vector: key = 00 01 02 ... 1f, nonce =
  // 00:00:00:09:00:00:00:4a:00:00:00:00, counter = 1. Our stream starts at
  // counter 0, so skip the first block (8 u64 draws) and check block 1's
  // first words: state[0..3] = 0xe4e7f110 0x15593bd1 0x1fdd0f50 0xc47120a3.
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce{0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20Stream stream(key, nonce);
  for (int i = 0; i < 8; ++i) stream.next_u64();  // discard block 0
  const std::uint64_t w01 = stream.next_u64();
  const std::uint64_t w23 = stream.next_u64();
  EXPECT_EQ(w01, 0x15593bd1e4e7f110ULL);  // words 0,1 little-endian packed
  EXPECT_EQ(w23, 0xc47120a31fdd0f50ULL);  // words 2,3
}

TEST(Prng, ChaChaStreamsDifferByStreamId) {
  ChaCha20Stream a(123, 0);
  ChaCha20Stream b(123, 1);
  ChaCha20Stream c(124, 0);
  const std::uint64_t va = a.next_u64();
  EXPECT_NE(va, b.next_u64());
  EXPECT_NE(va, c.next_u64());
  ChaCha20Stream a2(123, 0);
  EXPECT_EQ(va, a2.next_u64());
}

TEST(FixedPoint, RoundTripPreservesValues) {
  const FixedPointCodec codec(24, 16);
  for (double v : {0.0, 1.0, -1.0, 3.14159, -123.456, 1e-5, 4096.0}) {
    EXPECT_NEAR(codec.decode(codec.encode(v)), v, 1e-6) << v;
  }
}

TEST(FixedPoint, NegativeValuesUseTwosComplement) {
  const FixedPointCodec codec(10, 4);
  const std::uint64_t r = codec.encode(-2.5);
  EXPECT_GT(r, 1ULL << 63);  // top bit set for negatives
  EXPECT_DOUBLE_EQ(codec.decode(r), -2.5);
}

TEST(FixedPoint, SumOfEncodedEqualsEncodedSum) {
  const FixedPointCodec codec(20, 8);
  const std::vector<double> values{1.25, -3.5, 0.0625, 100.0};
  std::uint64_t acc = 0;
  double expected = 0.0;
  for (double v : values) {
    acc = ring_add(acc, codec.encode(v));
    expected += v;
  }
  EXPECT_NEAR(codec.decode(acc), expected, 1e-5);
}

TEST(FixedPoint, RejectsOutOfRangeAndNonFinite) {
  const FixedPointCodec codec(24, 1024);
  EXPECT_THROW(codec.encode(codec.max_encodable() * 2.0), NumericError);
  EXPECT_THROW(codec.encode(std::nan("")), NumericError);
  EXPECT_THROW(codec.encode(INFINITY), NumericError);
  EXPECT_NO_THROW(codec.encode(codec.max_encodable() * 0.99));
}

TEST(FixedPoint, ParameterValidation) {
  EXPECT_THROW(FixedPointCodec(0, 4), InvalidArgument);
  EXPECT_THROW(FixedPointCodec(53, 4), InvalidArgument);
  EXPECT_THROW(FixedPointCodec(24, 0), InvalidArgument);
}

TEST(FixedPoint, QuantizationBoundScalesWithTerms) {
  const FixedPointCodec codec(20, 64);
  EXPECT_DOUBLE_EQ(codec.quantization_bound(2),
                   2.0 / std::ldexp(1.0, 21));
  EXPECT_GT(codec.quantization_bound(64), codec.quantization_bound(2));
}

TEST(ModMath, MulmodMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 8, 5), 1u);
  EXPECT_EQ(mulmod(0, 123, 7), 0u);
  // Large 64-bit operands that overflow naive multiply.
  const std::uint64_t a = 0xFFFFFFFFFFFFFFC5ULL;
  const std::uint64_t m = 0xFFFFFFFFFFFFFFFDULL;
  EXPECT_EQ(mulmod(a, a, m),
            static_cast<u128>((static_cast<u128>(a) * a) % m));
}

TEST(ModMath, PowmodMatchesReference) {
  EXPECT_EQ(powmod(2, 10, 1000), 24u);
  EXPECT_EQ(powmod(3, 0, 7), 1u);
  // Fermat: a^(p-1) = 1 mod p.
  const std::uint64_t p = 2305843009213693951ULL;  // 2^61 - 1, prime
  EXPECT_EQ(powmod(12345, p - 1, p), 1u);
}

TEST(ModMath, GcdLcmInvmod) {
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(lcm_u64(4, 6), 12u);
  EXPECT_EQ(invmod(3, 7), 5u);  // 3*5 = 15 = 1 mod 7
  EXPECT_THROW(invmod(2, 4), NumericError);
}

TEST(ModMath, PrimalityKnownValues) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(561));            // Carmichael number
  EXPECT_TRUE(is_prime_u64(2305843009213693951ULL));   // 2^61 - 1
  EXPECT_FALSE(is_prime_u64(2305843009213693953ULL));
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest u64 prime
}

TEST(ModMath, RandomPrimeHasRequestedBits) {
  Xoshiro256 rng(1);
  for (unsigned bits : {16u, 31u, 61u}) {
    const std::uint64_t p = random_prime(bits, rng);
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_GE(p, 1ULL << (bits - 1));
    EXPECT_LT(p, 1ULL << bits);
  }
}

TEST(Dh, SharedSecretsAgree) {
  const DhGroup group = DhGroup::standard_group();
  EXPECT_TRUE(is_prime_u64(group.p));
  EXPECT_TRUE(is_prime_u64(group.q));
  EXPECT_EQ(group.p, 2 * group.q + 1);

  Xoshiro256 rng(5);
  const DhKeyPair alice = dh_keygen(group, rng);
  const DhKeyPair bob = dh_keygen(group, rng);
  const std::uint64_t s1 =
      dh_shared_secret(group, alice.secret, bob.public_value);
  const std::uint64_t s2 =
      dh_shared_secret(group, bob.secret, alice.public_value);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 0u);
}

TEST(Dh, RejectsOutOfGroupPeerValues) {
  const DhGroup group = DhGroup::standard_group();
  Xoshiro256 rng(6);
  const DhKeyPair key = dh_keygen(group, rng);
  EXPECT_THROW(dh_shared_secret(group, key.secret, 0), InvalidArgument);
  EXPECT_THROW(dh_shared_secret(group, key.secret, 1), InvalidArgument);
  EXPECT_THROW(dh_shared_secret(group, key.secret, group.p - 1),
               InvalidArgument);
  // A non-residue (order 2q element) must be rejected by the subgroup check.
  // g is a generator of the QR subgroup; find a non-QR by trial.
  for (std::uint64_t h = 2; h < 50; ++h) {
    if (powmod(h, group.q, group.p) != 1) {
      EXPECT_THROW(dh_shared_secret(group, key.secret, h), InvalidArgument);
      break;
    }
  }
}

class SecureSumParties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecureSumParties, SeededVariantAveragesExactly) {
  const std::size_t m = GetParam();
  const FixedPointCodec codec(24, m);
  std::vector<std::vector<double>> values(m);
  Xoshiro256 rng(m);
  for (auto& v : values) {
    v.resize(17);
    for (double& x : v) x = (rng.next_double() - 0.5) * 200.0;
  }
  const auto avg =
      secure_average(values, codec, 99, MaskVariant::kSeededMasks);
  for (std::size_t j = 0; j < 17; ++j) {
    double expected = 0.0;
    for (const auto& v : values) expected += v[j];
    expected /= static_cast<double>(m);
    EXPECT_NEAR(avg[j], expected, 1e-5);
  }
}

TEST_P(SecureSumParties, ExchangedVariantAveragesExactly) {
  const std::size_t m = GetParam();
  const FixedPointCodec codec(24, m);
  std::vector<std::vector<double>> values(m);
  Xoshiro256 rng(m ^ 0xF00);
  for (auto& v : values) {
    v.resize(9);
    for (double& x : v) x = (rng.next_double() - 0.5) * 10.0;
  }
  const auto avg =
      secure_average(values, codec, 123, MaskVariant::kExchangedMasks);
  for (std::size_t j = 0; j < 9; ++j) {
    double expected = 0.0;
    for (const auto& v : values) expected += v[j];
    expected /= static_cast<double>(m);
    EXPECT_NEAR(avg[j], expected, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, SecureSumParties,
                         ::testing::Values(2, 3, 4, 7, 16));

TEST(SecureSum, MaskedContributionHidesValue) {
  // The masked contribution must differ from the plain encoding, and two
  // different rounds must produce different maskings of the same value.
  const FixedPointCodec codec(20, 4);
  const auto seeds = agree_pairwise_seeds(4, 7);
  SecureSumParty party(0, 4, codec, seeds[0]);
  const std::vector<double> value{1.0, 2.0, 3.0};
  const auto masked0 = party.masked_contribution(value, 0);
  const auto masked1 = party.masked_contribution(value, 1);
  const auto plain = codec.encode_vector(value);
  EXPECT_NE(masked0, plain);
  EXPECT_NE(masked0, masked1);
}

TEST(SecureSum, CoalitionOfAllButOneLearnsNothingDeterministic) {
  // Reducer + parties {1, 2} collude against party 0 in a 4-party sum.
  // Party 0's contribution minus everything the coalition can reconstruct
  // still contains the pairwise mask with honest party 3, which is a
  // ChaCha20 stream unknown to the coalition: two different secrets for
  // party 0 produce coalition views that differ by exactly the secret
  // delta ONLY after removing party 3's mask — which they cannot.
  const FixedPointCodec codec(20, 4);
  const auto seeds = agree_pairwise_seeds(4, 11);
  const std::vector<double> secret_a{5.0};
  const std::vector<double> secret_b{-17.0};
  SecureSumParty party_a(0, 4, codec, seeds[0]);
  SecureSumParty party_b(0, 4, codec, seeds[0]);
  const auto view_a = party_a.masked_contribution(secret_a, 0);
  const auto view_b = party_b.masked_contribution(secret_b, 0);
  // Coalition knows masks (0,1) and (0,2); strip them.
  auto strip = [&](std::vector<std::uint64_t> v) {
    for (std::size_t peer : {1, 2}) {
      ChaCha20Stream prg(seeds[0][peer], 0);
      std::vector<std::uint64_t> mask(1);
      prg.fill(mask);
      ring_sub_inplace(v, mask);  // party 0 has id < peer => it added
    }
    return v;
  };
  const auto stripped_a = strip(view_a);
  const auto stripped_b = strip(view_b);
  // Residual views still don't reveal the plaintext encodings...
  EXPECT_NE(stripped_a[0], codec.encode(5.0));
  EXPECT_NE(stripped_b[0], codec.encode(-17.0));
  // ...because both are still offset by the same unknown (0,3) mask:
  EXPECT_EQ(stripped_a[0] - codec.encode(5.0),
            stripped_b[0] - codec.encode(-17.0));
}

TEST(SecureSum, AggregatorRequiresAllContributions) {
  const FixedPointCodec codec(20, 3);
  SecureSumAggregator aggregator(3, codec);
  aggregator.add(std::vector<std::uint64_t>{1, 2});
  EXPECT_THROW(aggregator.sum(), InvalidArgument);
  aggregator.add(std::vector<std::uint64_t>{1, 2});
  aggregator.add(std::vector<std::uint64_t>{1, 2});
  EXPECT_NO_THROW(aggregator.sum());
  EXPECT_THROW(aggregator.add(std::vector<std::uint64_t>{1, 2}),
               InvalidArgument);
}

TEST(SecureSum, PairwiseSeedsSymmetric) {
  const auto seeds = agree_pairwise_seeds(5, 42);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      if (i != j) EXPECT_EQ(seeds[i][j], seeds[j][i]);
}

TEST(SecretSharing, AdditiveRoundTrip) {
  Xoshiro256 rng(1);
  const std::uint64_t secret = 0xDEADBEEFCAFEF00DULL;
  const auto shares = additive_share(secret, 5, rng);
  EXPECT_EQ(shares.size(), 5u);
  EXPECT_EQ(additive_reconstruct(shares), secret);
  // Any strict subset sums to something else (w.h.p. — deterministic here).
  EXPECT_NE(additive_reconstruct(
                std::span<const std::uint64_t>(shares.data(), 4)),
            secret);
}

TEST(SecretSharing, ShamirThresholdReconstructs) {
  Xoshiro256 rng(2);
  const std::uint64_t secret = 1234567890123ULL;
  const auto shares = shamir_share(secret, 6, 3, rng);
  // Any 3 shares reconstruct.
  const std::vector<ShamirShare> subset{shares[1], shares[4], shares[5]};
  EXPECT_EQ(shamir_reconstruct(subset), secret);
  // All 6 also reconstruct.
  EXPECT_EQ(shamir_reconstruct(shares), secret);
}

TEST(SecretSharing, ShamirBelowThresholdIsWrong) {
  Xoshiro256 rng(3);
  const std::uint64_t secret = 777;
  const auto shares = shamir_share(secret, 5, 3, rng);
  const std::vector<ShamirShare> too_few{shares[0], shares[1]};
  // Interpolating a deg-2 polynomial from 2 points gives a different value.
  EXPECT_NE(shamir_reconstruct(too_few), secret);
}

TEST(SecretSharing, ShamirRejectsBadInputs) {
  Xoshiro256 rng(4);
  EXPECT_THROW(shamir_share(kShamirPrime, 3, 2, rng), InvalidArgument);
  EXPECT_THROW(shamir_share(1, 3, 4, rng), InvalidArgument);
  auto shares = shamir_share(1, 3, 2, rng);
  shares[1].x = shares[0].x;  // duplicate point
  EXPECT_THROW(shamir_reconstruct(shares), InvalidArgument);
}

TEST(SecretSharing, FieldOpsSatisfyAxioms) {
  const std::uint64_t a = 0x1234567890ABCDEFULL % kShamirPrime;
  const std::uint64_t b = 0x0FEDCBA098765432ULL % kShamirPrime;
  EXPECT_EQ(shamir_field_add(a, shamir_field_sub(b, a)), b);
  EXPECT_EQ(shamir_field_mul(a, shamir_field_inv(a)), 1u);
  EXPECT_EQ(shamir_field_mul(a, b), shamir_field_mul(b, a));
}

TEST(Paillier, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(1);
  const PaillierKeyPair keys = paillier_keygen(24, rng);
  for (std::uint64_t m : {0ULL, 1ULL, 42ULL, 99999ULL}) {
    const u128 c = paillier_encrypt(keys.public_key, m, rng);
    EXPECT_EQ(paillier_decrypt(keys.public_key, keys.private_key, c), m);
  }
}

TEST(Paillier, EncryptionIsRandomized) {
  Xoshiro256 rng(2);
  const PaillierKeyPair keys = paillier_keygen(24, rng);
  const u128 c1 = paillier_encrypt(keys.public_key, 7, rng);
  const u128 c2 = paillier_encrypt(keys.public_key, 7, rng);
  EXPECT_NE(c1, c2);  // same plaintext, different blinding
  EXPECT_EQ(paillier_decrypt(keys.public_key, keys.private_key, c1),
            paillier_decrypt(keys.public_key, keys.private_key, c2));
}

TEST(Paillier, AdditiveHomomorphism) {
  Xoshiro256 rng(3);
  const PaillierKeyPair keys = paillier_keygen(24, rng);
  const u128 c1 = paillier_encrypt(keys.public_key, 1000, rng);
  const u128 c2 = paillier_encrypt(keys.public_key, 234, rng);
  const u128 sum = paillier_add(keys.public_key, c1, c2);
  EXPECT_EQ(paillier_decrypt(keys.public_key, keys.private_key, sum), 1234u);
}

TEST(Paillier, ScalarHomomorphism) {
  Xoshiro256 rng(4);
  const PaillierKeyPair keys = paillier_keygen(24, rng);
  const u128 c = paillier_encrypt(keys.public_key, 321, rng);
  const u128 scaled = paillier_scale(keys.public_key, c, 5);
  EXPECT_EQ(paillier_decrypt(keys.public_key, keys.private_key, scaled),
            1605u);
}

TEST(Paillier, SignedEncoding) {
  Xoshiro256 rng(5);
  const PaillierKeyPair keys = paillier_keygen(24, rng);
  for (std::int64_t v : {-1000L, -1L, 0L, 1L, 999L}) {
    const std::uint64_t m = paillier_encode_signed(keys.public_key, v);
    EXPECT_EQ(paillier_decode_signed(keys.public_key, m), v);
  }
  // Homomorphic signed sum: (-5) + 12 = 7.
  const u128 c1 = paillier_encrypt(
      keys.public_key, paillier_encode_signed(keys.public_key, -5), rng);
  const u128 c2 = paillier_encrypt(
      keys.public_key, paillier_encode_signed(keys.public_key, 12), rng);
  const std::uint64_t decoded = paillier_decrypt(
      keys.public_key, keys.private_key, paillier_add(keys.public_key, c1, c2));
  EXPECT_EQ(paillier_decode_signed(keys.public_key, decoded), 7);
}

TEST(Paillier, RejectsOutOfRangePlaintext) {
  Xoshiro256 rng(6);
  const PaillierKeyPair keys = paillier_keygen(20, rng);
  EXPECT_THROW(paillier_encrypt(keys.public_key, keys.public_key.n, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace ppml::crypto
