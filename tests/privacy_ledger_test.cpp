// Privacy audit ledger: adversarial pad-reuse / Shamir over-exposure trips,
// exact reconciliation against the crypto.* counter shards, and the
// observational-only guarantee (consensus bit-identical ledger-on vs
// ledger-off, in-memory and cluster transports).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster_trainers.h"
#include "core/feature_selection.h"
#include "core/linear_horizontal.h"
#include "core/multiclass_horizontal.h"
#include "core/secure_prediction.h"
#include "core/vertical.h"
#include "crypto/dropout_recovery.h"
#include "crypto/secure_sum_session.h"
#include "data/generators.h"
#include "data/partition.h"
#include "obs/obs.h"
#include "svm/multiclass.h"

namespace ppml {
namespace {

using crypto::SecureSumConfig;
using crypto::SecureSumSession;
using Tensor = SecureSumSession::Tensor;

SecureSumConfig seeded_config(std::size_t parties, std::uint64_t seed) {
  SecureSumConfig config;
  config.num_parties = parties;
  config.protocol_seed = seed;
  return config;
}

core::AdmmParams fast_params(std::size_t iterations,
                             std::uint64_t protocol_seed = 0xC0FFEE) {
  core::AdmmParams params;
  params.max_iterations = iterations;
  params.protocol_seed = protocol_seed;
  return params;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------------------- pad reuse

TEST(PrivacyLedgerPads, ReuseTripsNamesEdgeAndDumpsFlightRing) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(256);
  const std::string dump = "privacy_pad_reuse_dump.json";
  std::remove(dump.c_str());
  recorder.arm_auto_dump(dump);
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, &recorder, &ledger);

  SecureSumSession sum(seeded_config(4, 0xFEEDu));
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  const std::vector<Tensor> ta{Tensor(a)};
  const std::vector<Tensor> tb{Tensor(b)};

  sum.contribute(1, ta, /*round=*/5, everyone);
  // Same party, same round, DIFFERENT plaintext: the round-5 pads on party
  // 1's three edges are being replayed — the first edge checked trips.
  try {
    sum.contribute(1, tb, /*round=*/5, everyone);
    FAIL() << "pad reuse did not trip";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one-time pad reused"), std::string::npos) << what;
    EXPECT_NE(what.find("party 1"), std::string::npos) << what;
    EXPECT_NE(what.find("round 5"), std::string::npos) << what;
  }

  const auto snap = ledger.snapshot();
  ASSERT_EQ(snap.violations.size(), 1u);
  EXPECT_EQ(snap.violations[0].kind, "pad_reuse");
  EXPECT_EQ(snap.violations[0].party, 1);
  EXPECT_NE(snap.violations[0].detail.find("edge (1,"), std::string::npos);
  EXPECT_EQ(metrics.counter("privacy.violations"), 1);

  // The check-failure hook dumped the armed ring; the dump carries both the
  // ledger's mark and the check failure itself.
  const std::string text = slurp(dump);
  ASSERT_FALSE(text.empty()) << "no flight dump written";
  EXPECT_NE(text.find("privacy.pad_reuse"), std::string::npos);
  EXPECT_NE(text.find("ppml_check_failure"), std::string::npos);
  std::remove(dump.c_str());
}

TEST(PrivacyLedgerPads, SamePlaintextIsBenignReplayNotViolation) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  SecureSumSession sum(seeded_config(4, 0xFEEDu));
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<Tensor> ta{Tensor(a)};

  const auto first = sum.contribute(2, ta, /*round=*/3, everyone);
  const auto again = sum.contribute(2, ta, /*round=*/3, everyone);
  EXPECT_EQ(first, again);  // deterministic re-execution

  const auto snap = ledger.snapshot();
  EXPECT_TRUE(snap.violations.empty());
  EXPECT_EQ(snap.benign_replays, 3u);  // one per edge of party 2
  EXPECT_EQ(snap.pads_distinct, 3u);
  EXPECT_FALSE(snap.pad_table_overflow);
}

TEST(PrivacyLedgerPads, CrossSessionSeedReuseCollides) {
  // Two sessions, same protocol seed (a missed rekey): each session's own
  // bookkeeping is clean, but the pads are keyed on the seed VALUES, so the
  // second session's round-0 masking of different values trips.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  SecureSumSession first(seeded_config(3, 0xABCDu));
  SecureSumSession second(seeded_config(3, 0xABCDu));
  const std::vector<std::size_t> everyone{0, 1, 2};
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{9.0, 9.0};
  const std::vector<Tensor> ta{Tensor(a)};
  const std::vector<Tensor> tb{Tensor(b)};
  first.contribute(0, ta, 0, everyone);
  EXPECT_THROW(second.contribute(0, tb, 0, everyone), Error);
}

TEST(PrivacyLedgerPads, ReportNamesOffendingParty) {
  obs::PrivacyLedger ledger;  // standalone — no session required
  ledger.note_pad_use(42, 100, 3, 1, 7, "unit");
  EXPECT_THROW(ledger.note_pad_use(42, 200, 3, 1, 7, "unit"), Error);

  const std::string json = obs::privacy_report_json(ledger, nullptr).dump(2);
  EXPECT_NE(json.find("\"pad_reuse\""), std::string::npos) << json;
  EXPECT_NE(json.find("party 3 edge (3,1) round 7 site unit"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"reconciled\": true"), std::string::npos) << json;
}

// ------------------------------------------------------- Shamir exposure

TEST(PrivacyLedgerShamir, MarginGaugeFallsThenOverExposureTrips) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(128);
  const std::string dump = "privacy_share_dump.json";
  std::remove(dump.c_str());
  recorder.arm_auto_dump(dump);
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, &recorder, &ledger);

  const auto seeds = crypto::agree_pairwise_seeds(5, 42);
  crypto::DropoutRecoverySession recovery(seeds, /*threshold=*/3,
                                          /*sharing_seed=*/0xABCu);
  {
    const auto snap = ledger.snapshot();
    ASSERT_EQ(snap.sharings.size(), 1u);
    EXPECT_EQ(snap.sharings[0].threshold, 3u);
    EXPECT_EQ(snap.sharings[0].seeds_dealt, 10u);   // C(5,2) pairs
    EXPECT_EQ(snap.sharings[0].shares_dealt, 50u);  // x 5 holders
    EXPECT_EQ(snap.sharings[0].min_live_margin, 3u);
  }

  // No one dropped: each reveal of pair (1,2)'s seed narrows the margin.
  recovery.share(/*holder=*/0, /*owner=*/1, /*peer=*/2);
  recovery.share(/*holder=*/3, /*owner=*/1, /*peer=*/2);
  EXPECT_DOUBLE_EQ(metrics.gauge("privacy.shamir.exposure_margin"), 1.0);
  EXPECT_EQ(ledger.snapshot().sharings[0].min_live_margin, 1u);

  try {
    recovery.share(/*holder=*/4, /*owner=*/1, /*peer=*/2);
    FAIL() << "threshold-th reveal of a live pair did not trip";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("share over-exposure"), std::string::npos) << what;
    EXPECT_NE(what.find("pair (1,2)"), std::string::npos) << what;
  }

  const auto snap = ledger.snapshot();
  ASSERT_EQ(snap.violations.size(), 1u);
  EXPECT_EQ(snap.violations[0].kind, "share_over_exposure");
  const std::string text = slurp(dump);
  ASSERT_FALSE(text.empty()) << "no flight dump written";
  EXPECT_NE(text.find("privacy.share_over_exposure"), std::string::npos);
  std::remove(dump.c_str());
}

TEST(PrivacyLedgerShamir, DroppedPartyReconstructionIsSanctioned) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  const std::size_t m = 5;
  const auto seeds = crypto::agree_pairwise_seeds(m, 42);
  const crypto::FixedPointCodec codec(20, 8);
  crypto::DropoutRecoverySession recovery(seeds, /*threshold=*/2, 7);

  const std::size_t dropped = 2;
  std::vector<std::size_t> survivors;
  std::vector<std::vector<std::uint64_t>> contributions;
  std::vector<double> expected(4, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (i == dropped) continue;
    survivors.push_back(i);
    const std::vector<double> values{1.0 * static_cast<double>(i), 2.0, 3.0,
                                     4.0};
    for (std::size_t j = 0; j < 4; ++j) expected[j] += values[j];
    crypto::SecureSumParty party(i, m, codec, seeds[i]);
    contributions.push_back(party.masked_contribution(values, /*round=*/1));
  }

  const auto recovered = crypto::recover_survivor_sum(
      recovery, contributions, survivors, dropped, /*round=*/1, codec);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(recovered[j], expected[j], 1e-4);

  // The same reveals that would trip a live pair pass silently once the
  // party is declared dropped — and every reveal/reconstruction is on the
  // books, reconciled exactly with the crypto.* counters.
  const auto snap = ledger.snapshot();
  EXPECT_TRUE(snap.violations.empty());
  ASSERT_EQ(snap.sharings.size(), 1u);
  EXPECT_EQ(snap.sharings[0].dropped, std::vector<std::size_t>{dropped});
  EXPECT_EQ(snap.sharings[0].seeds_reconstructed, 4u);
  EXPECT_GT(snap.sharings[0].reveals, 0u);
  EXPECT_TRUE(obs::privacy_reconciled(ledger, &metrics));
}

// --------------------------------------------------------- reconciliation

TEST(PrivacyLedgerReconcile, SessionDropoutRecoveryReconcilesExactly) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  SecureSumSession sum(seeded_config(4, 77));
  sum.arm_recovery(/*threshold=*/0,
                   SecureSumSession::epoch_sharing_seed(77, 0));
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  const std::vector<std::size_t> present{0, 1, 3};

  std::vector<std::vector<std::uint64_t>> contributions(4);
  for (std::size_t i : present) {
    obs::PartyScope scope(i);
    const std::vector<double> values{1.0, 2.0, 3.0};
    const std::vector<Tensor> tensors{Tensor(values)};
    contributions[i] = sum.contribute(i, tensors, /*round=*/0, everyone);
  }
  SecureSumSession::ReduceAudit audit;
  const auto average =
      sum.reduce_average(0, everyone, present, contributions, &audit);
  EXPECT_EQ(audit.dropped, std::vector<std::size_t>{2});
  for (double v : average) EXPECT_NEAR(v, v, 0.0);  // finite

  const auto snap = ledger.snapshot();
  EXPECT_TRUE(snap.violations.empty());
  ASSERT_EQ(snap.sharings.size(), 1u);
  EXPECT_EQ(snap.sharings[0].dropped, std::vector<std::size_t>{2});
  EXPECT_GT(snap.sharings[0].seeds_reconstructed, 0u);
  EXPECT_TRUE(obs::privacy_reconciled(ledger, &metrics));
  // And the per-party rows really match the counter shards one by one.
  for (const auto& [party, tally] : snap.parties) {
    EXPECT_EQ(tally.masks,
              metrics.party_counter("crypto.masks_generated", party));
    EXPECT_EQ(tally.contributions,
              metrics.party_counter("crypto.masked_contributions", party));
    EXPECT_EQ(tally.reconstructions,
              metrics.party_counter("crypto.shamir_reconstructions", party));
  }
}

TEST(PrivacyLedgerReconcile, ExchangedVariantAndTrainersReconcile) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  // Exchanged-variant session flow (exchange_round + contribute_exchanged).
  SecureSumConfig config;
  config.num_parties = 3;
  config.variant = crypto::MaskVariant::kExchangedMasks;
  config.protocol_seed = 5;
  SecureSumSession sum(config);
  std::vector<std::vector<std::uint64_t>> contributions(3);
  for (std::size_t round = 0; round < 3; ++round) {
    sum.exchange_round(round, 4);
    for (std::size_t i = 0; i < 3; ++i) {
      obs::PartyScope scope(i);
      const std::vector<double> values{1.0, 2.0, 3.0,
                                       static_cast<double>(round)};
      const std::vector<Tensor> tensors{Tensor(values)};
      contributions[i] = sum.contribute_exchanged(i, tensors, round);
    }
    const std::vector<std::size_t> everyone{0, 1, 2};
    sum.reduce_average(round, everyone, everyone, contributions);
  }

  // Whole trainers on top (both mask variants, both topologies).
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  core::AdmmParams params = fast_params(6, 0xBEEF);
  core::train_linear_horizontal(partition, params, nullptr);
  params.mask_variant = crypto::MaskVariant::kExchangedMasks;
  params.protocol_seed = 0xBEE5;
  core::train_linear_horizontal(partition, params, nullptr);
  params.mask_variant = crypto::MaskVariant::kSeededMasks;
  params.agg_topology = crypto::AggregationTopology::kGroupedRing;
  params.protocol_seed = 0xBEE6;
  core::train_linear_horizontal(partition, params, nullptr);

  const auto snap = ledger.snapshot();
  EXPECT_TRUE(snap.violations.empty());
  EXPECT_FALSE(snap.pad_table_overflow);
  EXPECT_TRUE(obs::privacy_reconciled(ledger, &metrics))
      << obs::privacy_report_json(ledger, &metrics).dump(2);
  EXPECT_NE(obs::privacy_report_json(ledger, &metrics)
                .dump(2)
                .find("\"reconciled\": true"),
            std::string::npos);
}

// --------------------------------------------------- observational purity

TEST(PrivacyLedgerPurity, ConsensusBitIdenticalLedgerOnVsOff) {
  auto split = data::train_test_split(data::make_cancer_like(3), 0.5, 42);
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const bool grouped : {false, true}) {
      const auto partition =
          data::partition_horizontally(split.train, 4, seed);
      core::AdmmParams params = fast_params(8, seed * 1000 + 7);
      if (grouped)
        params.agg_topology = crypto::AggregationTopology::kGroupedRing;

      const auto off = core::train_linear_horizontal(partition, params,
                                                     nullptr);
      svm::LinearModel on_model;
      {
        obs::Tracer tracer;
        obs::MetricsRegistry metrics;
        obs::FlightRecorder recorder(512);
        obs::PrivacyLedger ledger;
        obs::Session session(&tracer, &metrics, &recorder, &ledger);
        auto on = core::train_linear_horizontal(partition, params, nullptr);
        EXPECT_TRUE(ledger.snapshot().violations.empty());
        on_model = std::move(on.model);
      }
      ASSERT_EQ(off.model.w.size(), on_model.w.size());
      for (std::size_t j = 0; j < off.model.w.size(); ++j)
        EXPECT_EQ(off.model.w[j], on_model.w[j])
            << "seed " << seed << " grouped " << grouped << " j " << j;
      EXPECT_EQ(off.model.b, on_model.b);
    }
  }
}

TEST(PrivacyLedgerPurity, ClusterTransportBitIdenticalLedgerOnVsOff) {
  auto split = data::train_test_split(data::make_cancer_like(3), 0.5, 42);
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const core::AdmmParams params = fast_params(6, 0xC10u);
  mapreduce::ClusterConfig cluster_config;
  cluster_config.num_nodes = 5;

  mapreduce::Cluster off_cluster(cluster_config);
  const auto off = core::train_linear_horizontal_on_cluster(
      off_cluster, partition, params);
  svm::LinearModel on_model;
  {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    obs::PrivacyLedger ledger;
    obs::Session session(&tracer, &metrics, nullptr, &ledger);
    mapreduce::Cluster on_cluster(cluster_config);
    auto on = core::train_linear_horizontal_on_cluster(on_cluster, partition,
                                                       params);
    EXPECT_TRUE(ledger.snapshot().violations.empty());
    EXPECT_TRUE(obs::privacy_reconciled(ledger, &metrics));
    on_model = std::move(on.model);
  }
  ASSERT_EQ(off.model.w.size(), on_model.w.size());
  for (std::size_t j = 0; j < off.model.w.size(); ++j)
    EXPECT_EQ(off.model.w[j], on_model.w[j]) << j;
  EXPECT_EQ(off.model.b, on_model.b);
}

// ---------------------------------------------- audit fixes stay fixed

TEST(PrivacyLedgerAudit, PredictionSeedIsDomainSeparatedFromTraining) {
  const core::AdmmParams params = fast_params(10, 0xC0FFEE);
  const auto config = core::prediction_session_config(4, params);
  EXPECT_NE(config.protocol_seed, params.protocol_seed);
  // Distinct training seeds keep distinct prediction seeds.
  EXPECT_NE(config.protocol_seed,
            core::prediction_session_config(4, fast_params(10, 0xC0FFEF))
                .protocol_seed);
}

TEST(PrivacyLedgerAudit, TrainPredictSelectMulticlassShareOneLedgerCleanly) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::PrivacyLedger ledger;
  obs::Session session(&tracer, &metrics, nullptr, &ledger);

  auto split = data::train_test_split(data::make_cancer_like(2), 0.5, 42);
  const core::AdmmParams params = fast_params(6, 0xD00Du);

  // Vertical training, then TWO one-shot predictions on different inputs —
  // before the domain-separation fix both masked round 0 under the
  // training seeds and the second call was genuine pad reuse.
  const auto vertical = data::partition_vertically(split.train, 3, 7);
  const auto trained = core::train_linear_vertical(vertical, params, nullptr);
  core::secure_vertical_predict(trained.model, split.test.x, params);
  linalg::Matrix head(1, split.test.x.cols());
  for (std::size_t j = 0; j < head.cols(); ++j)
    head(0, j) = split.test.x(0, j) + 1.0;
  core::secure_vertical_predict(trained.model, head, params);

  // Feature selection reuses the same params, one-shot at round 0 too.
  const auto horizontal = data::partition_horizontally(split.train, 3, 7);
  core::secure_fisher_scores(horizontal, params);
  core::secure_fisher_scores(horizontal, params);

  // Multiclass one-vs-rest: K trainers under one params — per-class seeds
  // must not collide across (class, epoch) pairs.
  const auto digits = svm::make_digits_like(3, 240, 1);
  const auto multiclass = core::partition_multiclass_horizontally(digits, 2, 7);
  core::AdmmParams mc_params = fast_params(4, 0xD00Du);
  mc_params.c = 10.0;
  core::train_multiclass_linear_horizontal(multiclass, mc_params, nullptr);

  const auto snap = ledger.snapshot();
  EXPECT_TRUE(snap.violations.empty())
      << obs::privacy_report_json(ledger, &metrics).dump(2);
  EXPECT_TRUE(obs::privacy_reconciled(ledger, &metrics));
}

}  // namespace
}  // namespace ppml
