// Behavior suite for the asynchronous bounded-staleness consensus mode
// (core::BoundedStalenessPolicy + ConsensusEngine::step_round_async).
//
// The bit-identity contract (async with Q = M and no deadline == sync,
// exactly) is pinned in consensus_engine_test.cpp; this suite covers the
// genuinely asynchronous behaviors: quorum closes that skip a straggler,
// deadline-bounded rounds, stale-weighted carry-forward (with the exact
// renormalization mass), chronic-straggler drops feeding the Shamir
// recovery path exactly once, the staleness watchdog channel staying
// silent on healthy runs, and the async observability surface.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/consensus_engine.h"
#include "core/linear_horizontal.h"
#include "data/generators.h"
#include "data/partition.h"
#include "data/standardize.h"
#include "linalg/blas.h"
#include "mapreduce/network.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace ppml::core {
namespace {

data::HorizontalPartition make_partition(std::size_t m) {
  data::GaussianTaskConfig task;
  task.samples = 160;
  task.features = 6;
  task.separation = 1.6;
  task.seed = 11;
  task.name = "async-consensus";
  data::Dataset train = data::make_gaussian_task(task);
  data::StandardScaler scaler;
  scaler.fit(train.x);
  scaler.transform(train.x);
  return data::partition_horizontally(train, m, 5);
}

std::vector<std::shared_ptr<ConsensusLearner>> make_learners(
    const data::HorizontalPartition& partition, const AdmmParams& params) {
  std::vector<std::shared_ptr<ConsensusLearner>> learners;
  for (const data::Dataset& shard : partition.shards)
    learners.push_back(std::make_shared<LinearHorizontalLearner>(
        shard, partition.learners(), params));
  return learners;
}

AdmmParams async_params(std::size_t rounds, double quorum_fraction) {
  AdmmParams params;
  params.max_iterations = rounds;
  params.convergence_tolerance = 0.0;
  params.protocol_seed = 0x5eedULL;
  params.async_quorum_fraction = quorum_fraction;
  return params;
}

/// One permanently slow party: every round, `party` computes at `factor`
/// times the nominal step time.
mapreduce::FaultPlan storm_plan(std::size_t party, double factor) {
  mapreduce::FaultPlan plan;
  plan.seed = 7;
  mapreduce::ComputeDelay delay;
  delay.party = party;
  delay.factor = factor;
  plan.compute_delays.push_back(delay);
  return plan;
}

struct AsyncRun {
  ConsensusRunResult run;
  Vector z;
  double s = 0.0;
  /// Rounds on which the reduce audit reported recovered (dropped) parties.
  std::vector<std::size_t> recovery_rounds;
  /// last_async_outcome snapshots per round: (fresh, carried, weight_total).
  std::vector<std::size_t> fresh_per_round;
  std::vector<std::vector<std::size_t>> carried_per_round;
  std::vector<double> weight_total_per_round;
};

AsyncRun run_async(const data::HorizontalPartition& partition,
                   const AdmmParams& params, const mapreduce::FaultPlan* plan) {
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  BoundedStalenessPolicy policy;
  ConsensusEngine engine(learners, coordinator, params, policy);
  InMemoryTransport transport(plan);
  AsyncRun out;
  const RoundObserver observer = [&](std::size_t round) {
    const ConsensusEngine::ReduceOutcome& outcome = engine.last_async_outcome();
    if (!outcome.audit.dropped.empty()) out.recovery_rounds.push_back(round);
    out.fresh_per_round.push_back(outcome.fresh);
    out.carried_per_round.push_back(outcome.carried);
    out.weight_total_per_round.push_back(outcome.weight_total);
  };
  out.run = engine.run(transport, observer);
  out.z = coordinator.z();
  out.s = coordinator.s();
  return out;
}

// ---------------------------------------------------------------------------
// Quorum close: the straggler no longer sets the round clock.
// ---------------------------------------------------------------------------

TEST(AsyncConsensus, QuorumCloseRunsAtNominalRateUnderDelayStorm) {
  const auto partition = make_partition(5);
  AdmmParams params = async_params(8, 0.8);  // quorum 4 of 5
  params.max_staleness = 10;
  const mapreduce::FaultPlan plan = storm_plan(0, 4.0);
  const AsyncRun run = run_async(partition, params, &plan);

  EXPECT_EQ(run.run.iterations, 8u);
  // Every round closes at the 4th fresh finish = 1 nominal second; the 4x
  // straggler never holds the clock.
  EXPECT_EQ(run.run.async_seconds, 8.0);
  EXPECT_EQ(run.run.deadline_expirations, 0u);
  EXPECT_EQ(run.run.staleness_drops, 0u);
  EXPECT_FALSE(run.run.watchdog_tripped);
  for (std::size_t fresh : run.fresh_per_round) EXPECT_EQ(fresh, 4u);
}

TEST(AsyncConsensus, StaleWeightedCarryRenormalizesByExactWeightMass) {
  const auto partition = make_partition(5);
  AdmmParams params = async_params(5, 0.8);
  params.max_staleness = 10;
  params.stale_weight_mode = StaleWeight::kGeometric;
  params.stale_decay = 0.5;
  const mapreduce::FaultPlan plan = storm_plan(0, 4.0);
  const AsyncRun run = run_async(partition, params, &plan);

  // Party 0 (dispatched at t=0, 4s step) is harvested on round 3 with its
  // round-0 value: staleness 3, weight 0.5^3 — the carried set and the
  // renormalization mass are fully deterministic.
  ASSERT_EQ(run.carried_per_round.size(), 5u);
  EXPECT_EQ(run.carried_per_round[3], (std::vector<std::size_t>{0}));
  EXPECT_EQ(run.weight_total_per_round[3], 4.0 + 0.125);
  // Rounds 0-2: party 0 has no value yet — zero-weight placeholder, mass 4.
  EXPECT_EQ(run.weight_total_per_round[1], 4.0);
  EXPECT_EQ(run.carried_per_round[1], (std::vector<std::size_t>{0}));
}

TEST(AsyncConsensus, UniformWeightsConvergeToTheSyncFixedPoint) {
  const auto partition = make_partition(4);
  // The straggler's subproblem advances 5x slower, so the async run gets
  // proportionally more (nominal-second) rounds; both runs then sit at the
  // shared fixed point, where a carried value equals a fresh one.
  AdmmParams sync = async_params(400, 0.0);
  sync.async_quorum_fraction = 0.0;  // synchronous baseline
  AdmmParams async = async_params(1200, 0.75);
  async.max_staleness = 32;
  async.stale_weight_mode = StaleWeight::kUniform;

  auto sync_learners = make_learners(partition, sync);
  AveragingCoordinator sync_coordinator(
      partition.shards.front().features() + 1);
  FullParticipation sync_policy;
  ConsensusEngine sync_engine(sync_learners, sync_coordinator, sync,
                              sync_policy);
  InMemoryTransport sync_transport;
  sync_engine.run(sync_transport);

  const mapreduce::FaultPlan plan = storm_plan(0, 5.0);
  const AsyncRun async_run = run_async(partition, async, &plan);

  Vector diff = sync_coordinator.z();
  linalg::axpy(-1.0, async_run.z, diff);
  const double gap = linalg::norm(diff) /
                     std::max(1e-12, linalg::norm(sync_coordinator.z()));
  EXPECT_LT(gap, 5e-3) << "async consensus drifted from the sync fixed point";
  EXPECT_FALSE(async_run.run.watchdog_tripped);
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(AsyncConsensus, DeadlineClosesRoundsBeforeTheStraggler) {
  const auto partition = make_partition(4);
  AdmmParams params = async_params(6, 1.0);  // quorum = M: only the deadline
  params.async_round_deadline = 1.5;         // can close a round early
  params.max_staleness = 10;
  const mapreduce::FaultPlan plan = storm_plan(0, 3.0);

  obs::MetricsRegistry metrics;
  AsyncRun run;
  {
    obs::Session session(nullptr, &metrics);
    run = run_async(partition, params, &plan);
  }
  EXPECT_GE(run.run.deadline_expirations, 1u);
  EXPECT_EQ(metrics.counter("consensus.round.deadline_expired"),
            static_cast<std::int64_t>(run.run.deadline_expirations));
  EXPECT_EQ(run.run.staleness_drops, 0u);
  EXPECT_EQ(run.run.iterations, 6u);
}

// ---------------------------------------------------------------------------
// Chronic stragglers: staleness cap -> drop -> Shamir recovery, once.
// ---------------------------------------------------------------------------

TEST(AsyncConsensus, ChronicStragglerIsDroppedOnceAndMasksRecovered) {
  const auto partition = make_partition(5);
  AdmmParams params = async_params(8, 0.8);
  params.max_staleness = 2;
  const mapreduce::FaultPlan plan = storm_plan(0, 1000.0);

  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(256);
  AsyncRun run;
  {
    obs::Session session(nullptr, &metrics, &recorder);
    run = run_async(partition, params, &plan);
  }
  // Party 0 never produces a value; at round 3 its staleness (3) exceeds
  // the cap and it leaves the cohort — its woven-in masks corrected by the
  // recovery path exactly once, on exactly that round.
  EXPECT_EQ(run.run.staleness_drops, 1u);
  EXPECT_EQ(run.recovery_rounds, (std::vector<std::size_t>{3}));
  EXPECT_EQ(run.run.iterations, 8u);
  EXPECT_FALSE(run.run.watchdog_tripped);

  std::size_t drop_marks = 0;
  for (const auto& event : recorder.snapshot())
    if (event.kind == obs::FlightEventKind::kMark &&
        std::string(event.label) == "async.staleness_drop")
      ++drop_marks;
  EXPECT_EQ(drop_marks, 1u);
}

// ---------------------------------------------------------------------------
// Observability surface.
// ---------------------------------------------------------------------------

TEST(AsyncConsensus, EmitsQuorumSeriesStalenessHistogramAndFlightMarks) {
  const auto partition = make_partition(5);
  AdmmParams params = async_params(6, 0.8);
  params.max_staleness = 10;
  const mapreduce::FaultPlan plan = storm_plan(0, 4.0);

  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(256);
  {
    obs::Session session(nullptr, &metrics, &recorder);
    (void)run_async(partition, params, &plan);
  }
  const auto quorum_series = metrics.series("consensus.round.quorum_size");
  ASSERT_EQ(quorum_series.size(), 6u);
  for (double fresh : quorum_series) EXPECT_EQ(fresh, 4.0);

  const obs::HistogramSnapshot staleness =
      metrics.histogram("consensus.contribution.staleness");
  EXPECT_GT(staleness.total, 0u);
  EXPECT_GT(staleness.max, 0.0);  // the straggler's carried values

  std::size_t close_marks = 0;
  for (const auto& event : recorder.snapshot())
    if (event.kind == obs::FlightEventKind::kMark &&
        std::string(event.label) == "async.quorum_close")
      ++close_marks;
  EXPECT_EQ(close_marks, 6u);
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(AsyncConsensus, PolicyRejectsDegenerateConfigs) {
  const auto partition = make_partition(4);
  const auto construct = [&](const AdmmParams& params) {
    auto learners = make_learners(partition, params);
    AveragingCoordinator coordinator(partition.shards.front().features() + 1);
    BoundedStalenessPolicy policy;
    ConsensusEngine engine(learners, coordinator, params, policy);
  };

  AdmmParams over_quorum = async_params(4, 1.5);
  EXPECT_THROW(construct(over_quorum), Error);

  AdmmParams negative_deadline = async_params(4, 0.5);
  negative_deadline.async_round_deadline = -1.0;
  EXPECT_THROW(construct(negative_deadline), Error);

  AdmmParams zero_staleness = async_params(4, 0.5);
  zero_staleness.max_staleness = 0;
  EXPECT_THROW(construct(zero_staleness), Error);

  AdmmParams bad_decay = async_params(4, 0.5);
  bad_decay.stale_decay = 0.0;
  EXPECT_THROW(construct(bad_decay), Error);

  AdmmParams exchanged = async_params(4, 0.5);
  exchanged.mask_variant = crypto::MaskVariant::kExchangedMasks;
  EXPECT_THROW(construct(exchanged), Error);

  // M = 2 cannot arm Shamir recovery for staleness drops.
  const auto pair_partition = make_partition(2);
  const AdmmParams pair_params = async_params(4, 1.0);
  auto pair_learners = make_learners(pair_partition, pair_params);
  AveragingCoordinator pair_coordinator(
      pair_partition.shards.front().features() + 1);
  BoundedStalenessPolicy policy;
  EXPECT_THROW(ConsensusEngine(pair_learners, pair_coordinator, pair_params,
                               policy),
               Error);
}

}  // namespace
}  // namespace ppml::core
