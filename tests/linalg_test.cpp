#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/parallel.h"

namespace ppml::linalg {
namespace {

TEST(Matrix, ConstructsZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, FlatBufferConstructorValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}), InvalidArgument);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Matrix, TransposedRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_EQ(eye(1, 1), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, ArithmeticAndComparison) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum, (Matrix{{5, 5}, {5, 5}}));
  const Matrix diff = a - b;
  EXPECT_EQ(diff(0, 0), -3.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_EQ(scaled(1, 1), 8.0);
  EXPECT_THROW(a + Matrix(1, 2), InvalidArgument);
}

TEST(Matrix, MaxAbsDiffAndAllclose) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b = a;
  b(1, 1) += 1e-5;
  EXPECT_NEAR(max_abs_diff(a, b), 1e-5, 1e-12);
  EXPECT_TRUE(allclose(a, b, 1e-4));
  EXPECT_FALSE(allclose(a, b, 1e-6));
}

TEST(Matrix, StreamOutputContainsShape) {
  std::ostringstream os;
  os << Matrix(2, 3);
  EXPECT_NE(os.str().find("2x3"), std::string::npos);
}

TEST(Blas, DotAndNorms) {
  Vector x{1.0, 2.0, 2.0};
  EXPECT_EQ(dot(x, x), 9.0);
  EXPECT_EQ(squared_norm(x), 9.0);
  EXPECT_EQ(norm(x), 3.0);
  EXPECT_THROW(dot(x, Vector{1.0}), InvalidArgument);
}

TEST(Blas, AxpyScaleSubAdd) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{12.0, 24.0}));
  scale(0.5, y);
  EXPECT_EQ(y, (Vector{6.0, 12.0}));
  EXPECT_EQ(add(x, x), (Vector{2.0, 4.0}));
  EXPECT_EQ(sub(y, x), (Vector{5.0, 10.0}));
  EXPECT_EQ(scaled(3.0, x), (Vector{3.0, 6.0}));
}

TEST(Blas, SquaredDistance) {
  EXPECT_EQ(squared_distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 25.0);
}

TEST(Blas, GemvAgainstHand) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Vector out = gemv(a, Vector{1.0, 1.0});
  EXPECT_EQ(out, (Vector{3.0, 7.0, 11.0}));
  const Vector out_t = gemv_t(a, Vector{1.0, 1.0, 1.0});
  EXPECT_EQ(out_t, (Vector{9.0, 12.0}));
}

TEST(Blas, GemmAgainstHand) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(gemm(a, b), (Matrix{{19, 22}, {43, 50}}));
  EXPECT_THROW(gemm(a, Matrix(3, 2)), InvalidArgument);
}

TEST(Blas, GemmNtMatchesGemmWithTranspose) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> normal;
  Matrix a(4, 3);
  Matrix b(5, 3);
  for (double& v : a.data()) v = normal(rng);
  for (double& v : b.data()) v = normal(rng);
  EXPECT_TRUE(allclose(gemm_nt(a, b), gemm(a, b.transposed()), 1e-12));
}

TEST(Blas, GramMatricesMatchDefinition) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> normal;
  Matrix a(6, 4);
  for (double& v : a.data()) v = normal(rng);
  EXPECT_TRUE(allclose(gram_at_a(a), gemm(a.transposed(), a), 1e-12));
  EXPECT_TRUE(allclose(gram_a_at(a), gemm(a, a.transposed()), 1e-12));
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, SolveRecoversKnownSolution) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n);
  std::normal_distribution<double> normal;
  Matrix b(n, n);
  for (double& v : b.data()) v = normal(rng);
  // SPD by construction: B B^T + n I.
  Matrix a = gram_a_at(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

  Vector x_true(n);
  for (double& v : x_true) v = normal(rng);
  const Vector rhs = gemv(a, x_true);

  const Cholesky chol(a);
  const Vector x = chol.solve(rhs);
  EXPECT_TRUE(allclose(x, x_true, 1e-8)) << "n=" << n;

  // L L^T == A.
  EXPECT_TRUE(allclose(gemm_nt(chol.l(), chol.l()), a, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40, 100));

TEST(Cholesky, RejectsNonPositiveDefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, NumericError);
}

TEST(Cholesky, RejectsNonSymmetric) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, InvalidArgument);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_TRUE(allclose(gemm(a, inv), Matrix::identity(2), 1e-12));
}

TEST(Cholesky, LogDetMatchesHandComputation) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, MatrixSolveMatchesColumnSolves) {
  Matrix a{{5.0, 1.0}, {1.0, 4.0}};
  Matrix rhs{{1.0, 0.0}, {2.0, 1.0}};
  const Cholesky chol(a);
  const Matrix x = chol.solve(rhs);
  for (std::size_t j = 0; j < 2; ++j) {
    const Vector col = chol.solve(rhs.col(j));
    for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(x(i, j), col[i], 1e-12);
  }
}

TEST(Ldlt, SolvesIndefiniteSystems) {
  // Symmetric, full rank, indefinite (one negative eigenvalue).
  Matrix a{{2.0, 1.0}, {1.0, -3.0}};
  Vector x_true{1.5, -2.0};
  const Vector rhs = gemv(a, x_true);
  const Vector x = Ldlt(a).solve(rhs);
  EXPECT_TRUE(allclose(x, x_true, 1e-10));
}

TEST(Ldlt, MatchesCholeskyOnSpd) {
  Matrix a{{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  Vector rhs{1.0, 2.0, 3.0};
  EXPECT_TRUE(allclose(Ldlt(a).solve(rhs), Cholesky(a).solve(rhs), 1e-10));
}

TEST(Woodbury, MatchesDirectInverse) {
  // (I + c G^T G)^{-1} check via the small-space inverse it returns:
  // woodbury_small_inverse returns (I + c*Kgg)^{-1}.
  std::mt19937_64 rng(3);
  std::normal_distribution<double> normal;
  Matrix g(4, 7);
  for (double& v : g.data()) v = normal(rng);
  const Matrix kgg = gram_a_at(g);
  const double c = 2.5;

  const Matrix small_inv = woodbury_small_inverse(kgg, c);
  Matrix expected = kgg;
  for (double& v : expected.data()) v *= c;
  for (std::size_t i = 0; i < 4; ++i) expected(i, i) += 1.0;
  EXPECT_TRUE(allclose(gemm(expected, small_inv), Matrix::identity(4), 1e-9));

  // Full-space identity: (I + c G^T G)(I - c G^T D G) == I.
  const Matrix gtg = gram_at_a(g);
  Matrix big = gtg;
  for (double& v : big.data()) v *= c;
  for (std::size_t i = 0; i < 7; ++i) big(i, i) += 1.0;
  const Matrix gt_d_g = gemm(g.transposed(), gemm(small_inv, g));
  Matrix inv_big = gt_d_g;
  for (double& v : inv_big.data()) v *= -c;
  for (std::size_t i = 0; i < 7; ++i) inv_big(i, i) += 1.0;
  EXPECT_TRUE(allclose(gemm(big, inv_big), Matrix::identity(7), 1e-9));
}

TEST(Errors, CheckMacroMessagesIncludeLocation) {
  try {
    PPML_CHECK(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("linalg_test.cpp"), std::string::npos);
  }
}

// ------------------------------------------- blocked + threaded products

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double zero_fraction = 0.2) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& v : m.data())
    v = uniform(rng) < zero_fraction ? 0.0 : normal(rng);
  return m;
}

/// Naive std::thread parallel backend: static round-robin over `threads`.
ParallelBackend thread_backend(std::size_t threads) {
  return [threads](std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      pool.emplace_back([&, t] {
        for (std::size_t i = t; i < n; i += threads) fn(i);
      });
    for (std::thread& th : pool) th.join();
  };
}

TEST(BlockedGemm, MatchesNaiveExactlyAcrossShapes) {
  // Shapes chosen to cross the internal tile boundaries (64-row tasks,
  // 256-column tiles) and to hit the degenerate edges.
  const std::size_t shapes[][3] = {{0, 0, 0},   {0, 3, 5},    {3, 0, 5},
                                   {3, 5, 0},   {1, 1, 1},    {1, 7, 300},
                                   {7, 1, 7},   {65, 33, 130}, {64, 64, 256},
                                   {66, 10, 257}};
  std::uint64_t seed = 1000;
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s[0], s[1], ++seed);
    const Matrix b = random_matrix(s[1], s[2], ++seed);
    // operator== — the blocked path must be bit-identical, not just close.
    EXPECT_EQ(gemm(a, b), gemm_naive(a, b))
        << s[0] << "x" << s[1] << "x" << s[2];
    const Matrix bt = random_matrix(s[2], s[1], ++seed);
    EXPECT_EQ(gemm_nt(a, bt), gemm_nt_naive(a, bt))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(BlockedGemm, SyrkMatchesGemmNtWithSelf) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                              std::size_t{70}, std::size_t{130}}) {
    const Matrix a = random_matrix(n, 17, 2000 + n);
    EXPECT_EQ(syrk(a), gemm_nt_naive(a, a)) << "n=" << n;
    EXPECT_EQ(gram_a_at(a), syrk(a));
  }
}

TEST(BlockedGemm, ThreadedResultsAreBitIdenticalToSerial) {
  // Big enough to clear the internal FLOP threshold for parallel dispatch
  // (2 * 130 * 70 * 130 > 2^21), with several row-task blocks.
  const Matrix a = random_matrix(130, 70, 31);
  const Matrix b = random_matrix(70, 130, 32);
  const Matrix bt = random_matrix(130, 70, 33);
  const Matrix serial = gemm(a, b);
  const Matrix serial_nt = gemm_nt(a, bt);
  const Matrix serial_syrk = syrk(a);
  ASSERT_FALSE(parallel_enabled());
  for (const std::size_t threads : {1u, 2u, 5u}) {
    const ParallelScope scope(thread_backend(threads));
    ASSERT_TRUE(parallel_enabled());
    EXPECT_EQ(gemm(a, b), serial) << "threads=" << threads;
    EXPECT_EQ(gemm_nt(a, bt), serial_nt) << "threads=" << threads;
    EXPECT_EQ(syrk(a), serial_syrk) << "threads=" << threads;
  }
  EXPECT_FALSE(parallel_enabled());
}

TEST(ParallelFor, RunsEveryIndexOnceUnderBackend) {
  std::vector<std::atomic<int>> touched(257);
  for (auto& t : touched) t.store(0);
  const ParallelScope scope(thread_backend(4));
  parallel_for(touched.size(), [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < touched.size(); ++i)
    EXPECT_EQ(touched[i].load(), 1) << "i=" << i;
}

TEST(ParallelFor, NestedScopesRestorePrevious) {
  EXPECT_FALSE(parallel_enabled());
  {
    const ParallelScope outer(thread_backend(2));
    EXPECT_TRUE(parallel_enabled());
    {
      const ParallelScope inner(nullptr);  // explicitly serial inner region
      EXPECT_FALSE(parallel_enabled());
    }
    EXPECT_TRUE(parallel_enabled());
  }
  EXPECT_FALSE(parallel_enabled());
}

}  // namespace
}  // namespace ppml::linalg
