// Tests for the extension modules: cluster trainer facades, one-vs-rest
// multiclass (centralized + distributed), and the distributed feature
// selection protocol (the paper's stated future work).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/cluster_trainers.h"
#include "core/feature_selection.h"
#include "core/multiclass_horizontal.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "svm/metrics.h"
#include "svm/multiclass.h"

namespace ppml {
namespace {

data::SplitDataset cancer_split() {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  return split;
}

mapreduce::ClusterConfig five_nodes() {
  mapreduce::ClusterConfig config;
  config.num_nodes = 5;
  return config;
}

core::AdmmParams fast_params(std::size_t iterations) {
  core::AdmmParams params;
  params.max_iterations = iterations;
  return params;
}

// ------------------------------------------------- cluster facades

TEST(ClusterTrainers, LinearHorizontalFacadeLearns) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  mapreduce::Cluster cluster(five_nodes());
  const auto result = core::train_linear_horizontal_on_cluster(
      cluster, partition, fast_params(40));
  EXPECT_GE(svm::accuracy(result.model.predict_all(split.test.x),
                          split.test.y),
            0.9);
  EXPECT_EQ(result.cluster.job.rounds, 40u);
}

TEST(ClusterTrainers, KernelHorizontalFacadeLearns) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  core::AdmmParams params = fast_params(30);
  params.landmarks = 30;
  params.rho = 6.25;
  mapreduce::Cluster cluster(five_nodes());
  const auto result = core::train_kernel_horizontal_on_cluster(
      cluster, partition, svm::Kernel::rbf(0.1), params);
  EXPECT_GE(svm::accuracy(result.model.predict_all(split.test.x),
                          split.test.y),
            0.85);
}

TEST(ClusterTrainers, LinearVerticalFacadeLearns) {
  const auto split = cancer_split();
  const auto partition = data::partition_vertically(split.train, 4, 7);
  mapreduce::Cluster cluster(five_nodes());
  const auto result = core::train_linear_vertical_on_cluster(
      cluster, partition, fast_params(40));
  EXPECT_GE(svm::accuracy(result.model.predict_all(split.test.x),
                          split.test.y),
            0.9);
  EXPECT_EQ(result.model.w_blocks.size(), 4u);
}

TEST(ClusterTrainers, KernelVerticalFacadeLearns) {
  const auto split = cancer_split();
  const auto partition = data::partition_vertically(split.train, 4, 7);
  mapreduce::Cluster cluster(five_nodes());
  const auto result = core::train_kernel_vertical_on_cluster(
      cluster, partition, svm::Kernel::rbf(0.3), fast_params(40));
  EXPECT_GE(svm::accuracy(result.model.predict_all(split.test.x),
                          split.test.y),
            0.85);
}

TEST(ClusterTrainers, RequireEnoughNodes) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  mapreduce::ClusterConfig config;
  config.num_nodes = 4;  // no room for the reducer
  mapreduce::Cluster cluster(config);
  EXPECT_THROW(core::train_linear_horizontal_on_cluster(cluster, partition,
                                                        fast_params(5)),
               InvalidArgument);
}

TEST(ClusterTrainers, FacadeMatchesInMemoryModel) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto params = fast_params(15);
  const auto reference = core::train_linear_horizontal(partition, params);
  mapreduce::Cluster cluster(five_nodes());
  const auto on_cluster =
      core::train_linear_horizontal_on_cluster(cluster, partition, params);
  for (std::size_t j = 0; j < reference.model.w.size(); ++j)
    EXPECT_NEAR(on_cluster.model.w[j], reference.model.w[j], 1e-9);
}

// ------------------------------------------------------- multiclass

TEST(Multiclass, DigitsGeneratorShapesAndDeterminism) {
  const auto digits = svm::make_digits_like(10, 600, 3);
  EXPECT_EQ(digits.classes, 10u);
  EXPECT_EQ(digits.size(), 600u);
  EXPECT_EQ(digits.features(), 64u);
  for (double v : digits.x.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 16.0);
  }
  const auto again = svm::make_digits_like(10, 600, 3);
  EXPECT_EQ(digits.x, again.x);
  // Every class appears.
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t label : digits.y) counts[label] += 1;
  for (std::size_t c : counts) EXPECT_GT(c, 0u);
}

TEST(Multiclass, ValidateRejectsBadLabels) {
  svm::MulticlassDataset bad;
  bad.classes = 3;
  bad.x.resize(2, 2);
  bad.y = {0, 5};
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(Multiclass, BinaryViewRecodesLabels) {
  auto digits = svm::make_digits_like(4, 100, 1);
  const data::Dataset view = digits.binary_view(2);
  for (std::size_t i = 0; i < digits.size(); ++i)
    EXPECT_EQ(view.y[i], digits.y[i] == 2 ? 1.0 : -1.0);
  EXPECT_THROW(digits.binary_view(9), InvalidArgument);
}

TEST(Multiclass, CentralizedOneVsRestBeatsChance) {
  const auto digits = svm::make_digits_like(10, 1200, 2);
  const auto [train, test] = digits.split(0.5, 7);
  svm::TrainOptions options;
  options.c = 10.0;
  const auto linear = svm::train_one_vs_rest_linear(train, options);
  const double acc =
      svm::multiclass_accuracy(linear.predict_all(test.x), test.y);
  EXPECT_GE(acc, 0.90);  // optdigits-like: easy task
  EXPECT_EQ(linear.models.size(), 10u);
}

TEST(Multiclass, KernelOneVsRestWorks) {
  const auto digits = svm::make_digits_like(4, 400, 4);
  const auto [train, test] = digits.split(0.5, 3);
  svm::TrainOptions options;
  options.c = 10.0;
  const auto kernelized =
      svm::train_one_vs_rest_kernel(train, svm::Kernel::rbf(0.01), options);
  EXPECT_GE(svm::multiclass_accuracy(kernelized.predict_all(test.x), test.y),
            0.85);
}

TEST(Multiclass, DistributedMatchesCentralizedBallpark) {
  const auto digits = svm::make_digits_like(5, 1000, 5);
  const auto [train, test] = digits.split(0.5, 9);
  const auto partition = core::partition_multiclass_horizontally(train, 4, 7);
  EXPECT_EQ(partition.learners(), 4u);

  core::AdmmParams params = fast_params(40);
  params.c = 10.0;
  const auto distributed =
      core::train_multiclass_linear_horizontal(partition, params, &test);

  svm::TrainOptions central;
  central.c = 10.0;
  const auto reference = svm::train_one_vs_rest_linear(train, central);
  const double central_acc =
      svm::multiclass_accuracy(reference.predict_all(test.x), test.y);
  EXPECT_GE(distributed.test_accuracy, central_acc - 0.05);
  EXPECT_EQ(distributed.per_class_traces.size(), 5u);
}

TEST(Multiclass, PartitionRequiresAllClassesPerLearner) {
  auto digits = svm::make_digits_like(3, 30, 1);
  // 30 rows / 10 learners / 3 classes: almost surely some learner misses a
  // class; the partitioner must reject rather than silently train badly.
  bool threw = false;
  try {
    core::partition_multiclass_horizontally(digits, 10, 1);
  } catch (const InvalidArgument&) {
    threw = true;
  }
  // Either a clean partition (lucky seed) or the documented exception.
  if (!threw) SUCCEED();
}

TEST(Multiclass, AccuracyHelper) {
  const std::vector<std::size_t> pred{1, 2, 0, 1};
  const std::vector<std::size_t> truth{1, 2, 1, 1};
  EXPECT_DOUBLE_EQ(svm::multiclass_accuracy(pred, truth), 0.75);
  EXPECT_THROW(
      svm::multiclass_accuracy(pred, std::vector<std::size_t>{1}),
      InvalidArgument);
}

// ------------------------------------------- feature selection

TEST(FeatureSelection, SecureMatchesCentralizedScores) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto secure = core::secure_fisher_scores(partition, core::AdmmParams{});
  const auto central = core::centralized_fisher_scores(split.train);
  ASSERT_EQ(secure.fisher_scores.size(), central.size());
  for (std::size_t j = 0; j < central.size(); ++j)
    EXPECT_NEAR(secure.fisher_scores[j], central[j],
                1e-3 * (1.0 + central[j]))
        << "feature " << j;
}

TEST(FeatureSelection, RankingIsSortedByScore) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 3, 5);
  const auto result = core::secure_fisher_scores(partition, core::AdmmParams{});
  for (std::size_t i = 1; i < result.ranking.size(); ++i)
    EXPECT_GE(result.fisher_scores[result.ranking[i - 1]],
              result.fisher_scores[result.ranking[i]]);
}

TEST(FeatureSelection, InformativeFeatureOutranksNoise) {
  // Build a task where feature 0 is the label signal and the rest is noise.
  data::GaussianTaskConfig config;
  config.samples = 600;
  config.features = 1;
  config.separation = 3.0;
  config.seed = 11;
  data::Dataset signal = data::make_gaussian_task(config);
  data::Dataset padded;
  padded.name = "padded";
  padded.y = signal.y;
  padded.x.resize(signal.size(), 6);
  std::mt19937_64 rng(3);
  std::normal_distribution<double> normal;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    padded.x(i, 0) = signal.x(i, 0);
    for (std::size_t j = 1; j < 6; ++j) padded.x(i, j) = normal(rng);
  }
  const auto partition = data::partition_horizontally(padded, 3, 2);
  const auto result = core::secure_fisher_scores(partition, core::AdmmParams{});
  EXPECT_EQ(result.ranking.front(), 0u);
  EXPECT_GT(result.fisher_scores[0], 10.0 * result.fisher_scores[1]);
}

TEST(FeatureSelection, SelectTopFeaturesProjectsAllShards) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto selection = core::secure_fisher_scores(partition, core::AdmmParams{});
  const auto [reduced, kept] =
      core::select_top_features(partition, selection, 4);
  EXPECT_EQ(kept.size(), 4u);
  for (const auto& shard : reduced.shards) EXPECT_EQ(shard.features(), 4u);
  EXPECT_THROW(core::select_top_features(partition, selection, 0),
               InvalidArgument);
  EXPECT_THROW(core::select_top_features(partition, selection, 99),
               InvalidArgument);
}

TEST(FeatureSelection, SelectedFeaturesStillLearnWell) {
  const auto split = cancer_split();
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto selection = core::secure_fisher_scores(partition, core::AdmmParams{});
  const auto [reduced, kept] =
      core::select_top_features(partition, selection, 5);

  const auto result =
      core::train_linear_horizontal(reduced, fast_params(40), nullptr);
  // Project the test set onto the kept features for evaluation.
  data::Dataset test = split.test.feature_subset(kept);
  const double acc =
      svm::accuracy(result.model.predict_all(test.x), test.y);
  EXPECT_GE(acc, 0.88);  // 5 of 9 well-chosen features retain the signal
}

}  // namespace
}  // namespace ppml
