// Grouped/ring aggregation topology (crypto/grouped_ring.h +
// SecureSumSession plumbing): layout math over ragged and degenerate
// partitions, bit-compatibility of the decoded sums with the dense
// pairwise protocol, Shamir recovery when whole groups vanish, rekey cost
// accounting, and the mid-epoch topology pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "crypto/grouped_ring.h"
#include "crypto/secure_sum_session.h"
#include "obs/obs.h"

namespace ppml::crypto {
namespace {

std::vector<std::size_t> iota_set(std::size_t m) {
  std::vector<std::size_t> out(m);
  for (std::size_t i = 0; i < m; ++i) out[i] = i;
  return out;
}

std::vector<std::vector<double>> party_values(std::size_t m,
                                              std::size_t dim,
                                              double scale) {
  std::vector<std::vector<double>> values(m);
  for (std::size_t i = 0; i < m; ++i) {
    values[i].resize(dim);
    for (std::size_t j = 0; j < dim; ++j)
      values[i][j] = scale * static_cast<double>(i + 1) -
                     0.0625 * static_cast<double>(j + 1);
  }
  return values;
}

SecureSumConfig grouped_config(std::size_t m, std::size_t group_size,
                               std::uint64_t seed) {
  SecureSumConfig config;
  config.num_parties = m;
  config.protocol_seed = seed;
  config.topology = AggregationTopology::kGroupedRing;
  config.group_size = group_size;
  return config;
}

// --- layout math -----------------------------------------------------------

TEST(GroupedRingLayout, AutoGroupSizeIsCeilSqrt) {
  EXPECT_EQ(auto_group_size(1), 1u);
  EXPECT_EQ(auto_group_size(2), 2u);
  EXPECT_EQ(auto_group_size(4), 2u);
  EXPECT_EQ(auto_group_size(5), 3u);
  EXPECT_EQ(auto_group_size(9), 3u);
  EXPECT_EQ(auto_group_size(10), 4u);
  EXPECT_EQ(auto_group_size(16), 4u);
  EXPECT_EQ(auto_group_size(17), 5u);
  EXPECT_EQ(auto_group_size(512), 23u);
}

TEST(GroupedRingLayout, BalancedContiguousCutOnNonSquareM) {
  // M=7, groups of <= 3: G = 3 with sizes 3, 2, 2 — never more than one
  // apart, contiguous over the sorted ids.
  const auto ids = iota_set(7);
  const GroupLayout layout = build_group_layout(ids, 3);
  ASSERT_EQ(layout.num_groups(), 3u);
  EXPECT_EQ(layout.groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(layout.groups[1], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(layout.groups[2], (std::vector<std::size_t>{5, 6}));
  EXPECT_EQ(layout.leader(1), 3u);
  EXPECT_EQ(layout.group_of(6), 2u);
}

TEST(GroupedRingLayout, NonContiguousParticipantIds) {
  // Layouts are over participant LISTS, not id ranges — partial rounds and
  // shrunken cohorts hand in gap-ridden sets.
  const std::vector<std::size_t> ids = {1, 3, 4, 7, 9};
  const GroupLayout layout = build_group_layout(ids, 2);
  ASSERT_EQ(layout.num_groups(), 3u);
  EXPECT_EQ(layout.groups[0], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(layout.groups[1], (std::vector<std::size_t>{4, 7}));
  EXPECT_EQ(layout.groups[2], (std::vector<std::size_t>{9}));
  // 9 is a singleton group: its only mask edges are the leader ring.
  EXPECT_EQ(mask_peers(layout, 9), (std::vector<std::size_t>{1, 4}));
}

TEST(GroupedRingLayout, SingletonGroupKeepsTheGraphConnected) {
  // M=3, groups of 2: {0,1} and {2}. The lone party 2 still masks with
  // leader 0 through the (deduplicated) two-group ring.
  const auto ids = iota_set(3);
  const GroupLayout layout = build_group_layout(ids, 2);
  ASSERT_EQ(layout.num_groups(), 2u);
  EXPECT_EQ(layout.groups[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(mask_peers(layout, 2), (std::vector<std::size_t>{0}));
  EXPECT_EQ(mask_peers(layout, 0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(mask_peers(layout, 1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(grouped_mask_edges(3, 2), 2u);
}

TEST(GroupedRingLayout, TwoGroupRingHasOneLeaderEdgeNotTwo) {
  // With exactly two groups prev-leader == next-leader: the ring would
  // double the edge, which the dedup must collapse (a doubled antisymmetric
  // mask pair still cancels, but the mask count and threat model assume
  // simple edges).
  const auto ids = iota_set(4);
  const GroupLayout layout = build_group_layout(ids, 2);
  ASSERT_EQ(layout.num_groups(), 2u);
  EXPECT_EQ(mask_peers(layout, 0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(mask_peers(layout, 2), (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(grouped_mask_edges(4, 2), 3u);
}

TEST(GroupedRingLayout, GroupSizeOneDegeneratesToAPureRing) {
  EXPECT_EQ(grouped_mask_edges(5, 1), 5u);  // 5 singleton groups, ring of 5
  const GroupLayout layout = build_group_layout(iota_set(5), 1);
  EXPECT_EQ(mask_peers(layout, 0), (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(mask_peers(layout, 2), (std::vector<std::size_t>{1, 3}));
}

TEST(GroupedRingLayout, SingleGroupDegeneratesToThePairwiseClique) {
  EXPECT_EQ(grouped_mask_edges(6, 6), 15u);  // C(6,2), no ring
  const GroupLayout layout = build_group_layout(iota_set(6), 6);
  EXPECT_EQ(layout.num_groups(), 1u);
  EXPECT_EQ(mask_peers(layout, 3),
            (std::vector<std::size_t>{0, 1, 2, 4, 5}));
}

TEST(GroupedRingLayout, EdgeCountMatchesTheDegreeSum) {
  // 2|E| must equal the sum of per-party mask-set degrees — that identity
  // is what makes crypto.masks_generated per round exactly 2|E|.
  for (const std::size_t m : {2u, 3u, 5u, 8u, 12u, 17u}) {
    for (const std::size_t gs : {0u, 1u, 2u, 3u, 5u}) {
      const auto ids = iota_set(m);
      std::size_t degree_sum = 0;
      for (std::size_t i = 0; i < m; ++i)
        degree_sum += grouped_mask_set(ids, gs, i).size() - 1;
      EXPECT_EQ(degree_sum, 2 * grouped_mask_edges(m, gs))
          << "m=" << m << " gs=" << gs;
    }
  }
}

TEST(GroupedRingLayout, RejectsUnsortedParticipants) {
  const std::vector<std::size_t> unsorted = {3, 1, 2};
  EXPECT_THROW(build_group_layout(unsorted, 2), InvalidArgument);
  const std::vector<std::size_t> duplicated = {1, 1, 2};
  EXPECT_THROW(build_group_layout(duplicated, 2), InvalidArgument);
}

// --- bit-compatibility with the pairwise protocol --------------------------

TEST(GroupedRingSession, SumsBitIdenticalToPairwiseAcrossShapes) {
  for (const std::size_t m : {2u, 3u, 4u, 5u, 7u, 8u, 9u, 12u}) {
    for (const std::size_t gs : {0u, 1u, 2u, 3u}) {
      const auto values = party_values(m, 6, 0.75);
      const std::vector<SecureSumSession::Tensor> tensors(values.begin(),
                                                          values.end());
      SecureSumConfig pairwise;
      pairwise.num_parties = m;
      pairwise.protocol_seed = 0x5eed;
      SecureSumSession dense(pairwise);
      SecureSumSession grouped(grouped_config(m, gs, 0x5eed));
      for (const std::size_t round : {0u, 1u, 7u}) {
        EXPECT_EQ(dense.sum_once(tensors, round),
                  grouped.sum_once(tensors, round))
            << "m=" << m << " gs=" << gs << " round=" << round;
      }
    }
  }
}

TEST(GroupedRingSession, WireContributionsAreMaskedAndTopologySpecific) {
  // Same plaintext, same seeds: the grouped wire vector must differ from
  // both the raw encoding (the masks are real) and the pairwise wire
  // vector (the edge set is different) — only the SUM agrees.
  const std::size_t m = 9;
  const auto values = party_values(m, 6, 0.5);
  SecureSumConfig pairwise;
  pairwise.num_parties = m;
  pairwise.protocol_seed = 0xBEEF;
  SecureSumSession dense(pairwise);
  SecureSumSession grouped(grouped_config(m, 3, 0xBEEF));
  const auto everyone = iota_set(m);
  const SecureSumSession::Tensor tensor = values[4];
  const auto grouped_wire = grouped.contribute(4, {&tensor, 1}, 0, everyone);
  const auto dense_wire = dense.contribute(4, {&tensor, 1}, 0, everyone);
  const auto plain = grouped.codec().encode_vector(values[4]);
  EXPECT_NE(grouped_wire, plain);
  EXPECT_NE(grouped_wire, dense_wire);
}

// --- dropout recovery at group scale ---------------------------------------

TEST(GroupedRingSession, WholeGroupDropoutRecoversAndMatchesPairwise) {
  // M=9 in groups of 3: {0,1,2} {3,4,5} {6,7,8}. The entire middle group
  // vanishes after masking. Interior member 4's neighborhood dropped with
  // it (no correction needed — none of its edge streams reached the
  // accumulator); leader 3's ring edges to leaders 0 and 6 must be
  // reconstructed. The corrected average must equal the pairwise
  // protocol's own recovery result bit for bit.
  const std::size_t m = 9;
  const auto values = party_values(m, 5, 1.25);
  const std::vector<SecureSumSession::Tensor> tensors(values.begin(),
                                                      values.end());
  const auto everyone = iota_set(m);
  const std::vector<std::size_t> present = {0, 1, 2, 6, 7, 8};

  const auto run = [&](SecureSumConfig config) {
    SecureSumSession session(config);
    session.arm_recovery(/*threshold=*/0, /*sharing_seed=*/0xD509);
    std::vector<std::vector<std::uint64_t>> wire(m);
    for (std::size_t i = 0; i < m; ++i) {
      const SecureSumSession::Tensor tensor = values[i];
      wire[i] = session.contribute(i, {&tensor, 1}, /*round=*/2, everyone);
    }
    std::vector<std::vector<std::uint64_t>> delivered(m);
    for (std::size_t i : present) delivered[i] = wire[i];
    SecureSumSession::ReduceAudit audit;
    const auto average =
        session.reduce_average(/*round=*/2, everyone, present, delivered,
                               &audit);
    EXPECT_EQ(audit.dropped, (std::vector<std::size_t>{3, 4, 5}));
    return average;
  };

  SecureSumConfig pairwise;
  pairwise.num_parties = m;
  pairwise.protocol_seed = 0xC0FFEE;

  obs::MetricsRegistry grouped_metrics;
  std::vector<double> grouped_avg;
  {
    obs::Session obs_session(nullptr, &grouped_metrics);
    grouped_avg = run(grouped_config(m, 3, 0xC0FFEE));
  }
  obs::MetricsRegistry pairwise_metrics;
  std::vector<double> pairwise_avg;
  {
    obs::Session obs_session(nullptr, &pairwise_metrics);
    pairwise_avg = run(pairwise);
  }
  EXPECT_EQ(grouped_avg, pairwise_avg);

  // Sparse recovery: pairwise reconstructs every (dropped, survivor) seed —
  // 3 x 6 — while grouped only needs leader 3's two surviving ring
  // neighbors (members 4 and 5 have no surviving neighbors at all).
  EXPECT_EQ(pairwise_metrics.counter("crypto.shamir_reconstructions"), 18);
  EXPECT_EQ(grouped_metrics.counter("crypto.shamir_reconstructions"), 2);
  EXPECT_EQ(grouped_metrics.counter("crypto.mask_corrections"), 1);
}

TEST(GroupedRingSession, SingleDropoutInsideAGroupRecovers) {
  // Non-leader 7 drops out of {6,7,8}: only its two group peers' seeds are
  // reconstructed, and the decoded average matches pairwise recovery.
  const std::size_t m = 9;
  const auto values = party_values(m, 4, 0.5);
  const auto everyone = iota_set(m);
  std::vector<std::size_t> present;
  for (std::size_t i = 0; i < m; ++i)
    if (i != 7) present.push_back(i);

  const auto run = [&](SecureSumConfig config) {
    SecureSumSession session(config);
    session.arm_recovery(0, 0xD509);
    std::vector<std::vector<std::uint64_t>> wire(m);
    for (std::size_t i = 0; i < m; ++i) {
      const SecureSumSession::Tensor tensor = values[i];
      wire[i] = session.contribute(i, {&tensor, 1}, 0, everyone);
    }
    wire[7].clear();
    return session.reduce_average(0, everyone, present, wire);
  };
  SecureSumConfig pairwise;
  pairwise.num_parties = m;
  pairwise.protocol_seed = 0x1234;
  obs::MetricsRegistry metrics;
  std::vector<double> grouped_avg;
  {
    obs::Session obs_session(nullptr, &metrics);
    grouped_avg = run(grouped_config(m, 3, 0x1234));
  }
  EXPECT_EQ(grouped_avg, run(pairwise));
  EXPECT_EQ(metrics.counter("crypto.shamir_reconstructions"), 2);
}

// --- rekey lifecycle and cost ----------------------------------------------

TEST(GroupedRingSession, RekeyCostStaysLinearInTheEdgeSet) {
  // After a rejoin the fabric rebuilds the session under a new epoch. The
  // per-round mask bill must stay 2|E| (not M(M-1)) across epochs — the
  // whole point of the topology is that rekey-heavy deployments stop
  // paying the quadratic wall.
  const std::size_t m = 16;
  const std::size_t gs = 4;
  const auto values = party_values(m, 3, 0.25);
  const auto everyone = iota_set(m);
  const std::int64_t per_round =
      static_cast<std::int64_t>(2 * grouped_mask_edges(m, gs));
  const SecureSumConfig config = grouped_config(m, gs, 0xFEED);

  for (const std::size_t epoch : {0u, 1u, 5u}) {
    SecureSumSession session(config, epoch);
    obs::MetricsRegistry metrics;
    {
      obs::Session obs_session(nullptr, &metrics);
      std::vector<std::vector<std::uint64_t>> wire(m);
      for (std::size_t i = 0; i < m; ++i) {
        const SecureSumSession::Tensor tensor = values[i];
        wire[i] = session.contribute(i, {&tensor, 1}, 0, everyone);
      }
      (void)session.reduce_average(0, everyone, everyone, wire);
    }
    EXPECT_EQ(metrics.counter("crypto.masks_generated"), per_round)
        << "epoch=" << epoch;
    EXPECT_LT(per_round, static_cast<std::int64_t>(m * (m - 1)));
  }
}

TEST(GroupedRingSession, EpochsProduceDistinctSumsOnlyThroughRekeyedMasks) {
  // Different epochs re-run key agreement, so single wire vectors change,
  // but the decoded sum is epoch-independent — rekey never perturbs the
  // model math.
  const std::size_t m = 6;
  const auto values = party_values(m, 4, 1.0);
  const std::vector<SecureSumSession::Tensor> tensors(values.begin(),
                                                      values.end());
  const SecureSumConfig config = grouped_config(m, 0, 0xABCD);
  SecureSumSession epoch0(config, 0);
  SecureSumSession epoch1(config, 1);
  const auto everyone = iota_set(m);
  const SecureSumSession::Tensor tensor = values[0];
  EXPECT_NE(epoch0.contribute(0, {&tensor, 1}, 0, everyone),
            epoch1.contribute(0, {&tensor, 1}, 0, everyone));
  EXPECT_EQ(epoch0.sum_once(tensors, 1), epoch1.sum_once(tensors, 1));
}

// --- topology pinning (the mid-epoch bugfix) -------------------------------

TEST(GroupedRingSession, TopologySwitchAllowedOnlyOnAnUnusedEpoch) {
  SecureSumConfig config;
  config.num_parties = 4;
  config.protocol_seed = 0x77;
  SecureSumSession session(config);
  EXPECT_FALSE(session.epoch_active());

  // Before any masking the topology is still negotiable.
  session.set_topology(AggregationTopology::kGroupedRing, 2);
  EXPECT_EQ(session.topology(), AggregationTopology::kGroupedRing);
  session.set_topology(AggregationTopology::kPairwise);

  const auto values = party_values(4, 3, 0.5);
  const auto everyone = iota_set(4);
  const SecureSumSession::Tensor tensor = values[1];
  (void)session.contribute(1, {&tensor, 1}, 0, everyone);
  EXPECT_TRUE(session.epoch_active());
  EXPECT_THROW(
      session.set_topology(AggregationTopology::kGroupedRing, 2),
      InvalidArgument);

  // A reducer-only session is pinned by its first reduction too.
  SecureSumSession reducer(config);
  std::vector<std::vector<std::uint64_t>> wire(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const SecureSumSession::Tensor t = values[i];
    wire[i] = session.contribute(i, {&t, 1}, 1, everyone);
  }
  (void)reducer.reduce_average(1, everyone, everyone, wire);
  EXPECT_THROW(reducer.set_topology(AggregationTopology::kGroupedRing),
               InvalidArgument);

  // Rebuilding for a new epoch (what ConsensusEngine::rekey does) unpins.
  SecureSumSession rekeyed(session.config(), /*epoch=*/1);
  EXPECT_FALSE(rekeyed.epoch_active());
  rekeyed.set_topology(AggregationTopology::kGroupedRing, 2);
  EXPECT_EQ(rekeyed.topology(), AggregationTopology::kGroupedRing);
}

TEST(GroupedRingSession, GroupedRingRequiresSeededMasks) {
  SecureSumConfig config;
  config.num_parties = 4;
  config.variant = MaskVariant::kExchangedMasks;
  config.topology = AggregationTopology::kGroupedRing;
  EXPECT_THROW(SecureSumSession{config}, InvalidArgument);

  SecureSumConfig exchanged;
  exchanged.num_parties = 4;
  exchanged.variant = MaskVariant::kExchangedMasks;
  SecureSumSession session(exchanged);
  EXPECT_THROW(session.set_topology(AggregationTopology::kGroupedRing),
               InvalidArgument);
}

}  // namespace
}  // namespace ppml::crypto
