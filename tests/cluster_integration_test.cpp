// End-to-end tests of the paper's deployment shape: trainers running as
// iterative MapReduce jobs on the simulated cluster, with the secure
// summation protocol on the wire.
#include <gtest/gtest.h>

#include <cmath>

#include "core/linear_horizontal.h"
#include "core/mapreduce_adapter.h"
#include "core/vertical.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "obs/obs.h"
#include "svm/metrics.h"

namespace ppml::core {
namespace {

using mapreduce::Bytes;

data::SplitDataset cancer_split() {
  auto split = data::train_test_split(data::make_cancer_like(1), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  return split;
}

mapreduce::ClusterConfig cluster_config(std::size_t nodes,
                                        std::size_t replication = 1) {
  mapreduce::ClusterConfig config;
  config.num_nodes = nodes;
  config.replication = replication;
  return config;
}

TEST(ShardSerde, HorizontalRoundTrip) {
  const auto split = cancer_split();
  const Bytes payload = serialize_horizontal_shard(split.train);
  const data::Dataset restored = deserialize_horizontal_shard(payload);
  EXPECT_EQ(restored.x, split.train.x);
  EXPECT_EQ(restored.y, split.train.y);
  EXPECT_EQ(restored.name, split.train.name);
}

TEST(ShardSerde, VerticalRoundTrip) {
  linalg::Matrix block{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(deserialize_vertical_block(serialize_vertical_block(block)),
            block);
}

/// Builds the cluster run for linear-horizontal and returns everything the
/// assertions need.
struct ClusterRun {
  svm::LinearModel model;
  ClusterTrainResult result;
  std::map<std::string, mapreduce::ChannelStats> channels;
};

ClusterRun run_linear_horizontal_on_cluster(
    const data::SplitDataset& split, const AdmmParams& params,
    mapreduce::Cluster& cluster, mapreduce::JobConfig job_config = {}) {
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  std::vector<Bytes> shards;
  for (const auto& shard : partition.shards)
    shards.push_back(serialize_horizontal_shard(shard));

  const std::size_t k = split.train.features();
  AveragingCoordinator coordinator(k + 1);
  const AdmmParams captured = params;
  const LearnerFactory factory = [captured](mapreduce::BytesView payload,
                                            std::size_t) {
    return std::make_shared<LinearHorizontalLearner>(
        deserialize_horizontal_shard(payload), 4, captured);
  };

  ClusterRun run;
  run.result = run_consensus_on_cluster(cluster, shards, factory, coordinator,
                                        k + 1, /*reducer_node=*/4, params,
                                        job_config);
  run.model = svm::LinearModel{coordinator.z(), coordinator.s()};
  run.channels = cluster.network().channel_stats();
  return run;
}

TEST(ClusterIntegration, MatchesInMemoryTrainingExactly) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 20;

  // In-memory reference.
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto reference = train_linear_horizontal(partition, params, nullptr);

  // Cluster run with the same parameters and protocol seed.
  mapreduce::Cluster cluster(cluster_config(5));
  const ClusterRun run =
      run_linear_horizontal_on_cluster(split, params, cluster);

  ASSERT_EQ(run.model.w.size(), reference.model.w.size());
  for (std::size_t j = 0; j < run.model.w.size(); ++j)
    EXPECT_NEAR(run.model.w[j], reference.model.w[j], 1e-9) << j;
  EXPECT_NEAR(run.model.b, reference.model.b, 1e-9);
  EXPECT_EQ(run.result.delta_trace.size(), 20u);
}

TEST(ClusterIntegration, TracingDoesNotPerturbTraining) {
  // The observability session must be purely observational: a traced run
  // and an untraced run produce bit-identical models.
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 15;

  mapreduce::Cluster plain_cluster(cluster_config(5));
  const ClusterRun plain =
      run_linear_horizontal_on_cluster(split, params, plain_cluster);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  mapreduce::Cluster traced_cluster(cluster_config(5));
  ClusterRun traced;
  {
    obs::Session session(&tracer, &metrics);
    traced = run_linear_horizontal_on_cluster(split, params, traced_cluster);
  }

  EXPECT_EQ(traced.model.w, plain.model.w);  // bit-identical, not just close
  EXPECT_EQ(traced.model.b, plain.model.b);
  EXPECT_EQ(traced.result.delta_trace, plain.result.delta_trace);
  // And the session actually observed the job.
  EXPECT_GT(tracer.span_count(), 0u);
  EXPECT_GT(metrics.counter("crypto.masked_contributions"), 0);
}

TEST(ClusterIntegration, SpillingBlockstoreDoesNotPerturbTraining) {
  // Out-of-core storage must be purely a memory-management concern: a run
  // whose every shard block is spilled to disk and mmap-served produces a
  // bit-identical model to the all-in-RAM run.
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 15;

  mapreduce::Cluster in_ram(cluster_config(5));
  const ClusterRun reference =
      run_linear_horizontal_on_cluster(split, params, in_ram);

  mapreduce::ClusterConfig budgeted = cluster_config(5);
  budgeted.blockstore_budget_bytes = 1024;  // far below one serialized shard
  mapreduce::Cluster spilled_cluster(budgeted);
  const ClusterRun spilled =
      run_linear_horizontal_on_cluster(split, params, spilled_cluster);

  EXPECT_EQ(spilled.model.w, reference.model.w);  // bit-identical
  EXPECT_EQ(spilled.model.b, reference.model.b);
  EXPECT_EQ(spilled.result.delta_trace, reference.result.delta_trace);

  const mapreduce::SpillStats stats = spilled_cluster.storage().spill_stats();
  EXPECT_GT(stats.spilled_blocks, 0u);
  EXPECT_GT(stats.mapped_reads, 0u);
}

TEST(ClusterIntegration, PartyRollupSumsMatchGlobalCountersExactly) {
  // The party shards are a decomposition of the global counters, not an
  // independent tally: summing `net.bytes{party=*}` (and every other
  // sharded counter) must reproduce the global value exactly. This holds
  // by construction — MetricsRegistry::add bumps both under one lock — and
  // this test pins it across a real cluster run, where mapper threads,
  // the reducer scope, and ambient driver code all contribute shards.
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 10;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  mapreduce::Cluster cluster(cluster_config(5));
  {
    obs::Session session(&tracer, &metrics);
    run_linear_horizontal_on_cluster(split, params, cluster);
  }

  const auto shards = metrics.party_counters();
  for (const auto& [name, global] : metrics.counters()) {
    const auto it = shards.find(name);
    ASSERT_NE(it, shards.end()) << name << " has no party shards";
    std::int64_t sum = 0;
    for (const auto& [party, value] : it->second) sum += value;
    EXPECT_EQ(sum, global) << name << " shards do not sum to the global";
  }

  // The interesting counters really are split across the cluster: all four
  // mapper parties generated masks, and the reducer (not the mappers)
  // absorbed the contribution traffic.
  const auto& masks = shards.at("crypto.masks_generated");
  for (int party = 0; party < 4; ++party) {
    const auto it = masks.find(party);
    ASSERT_NE(it, masks.end()) << "party " << party << " generated no masks";
    EXPECT_GT(it->second, 0);
  }
  EXPECT_EQ(metrics.party_counter("crypto.masks_generated", obs::kNoParty), 0);
  EXPECT_GT(metrics.party_counter("net.bytes", obs::kReducerParty), 0);
  EXPECT_GT(metrics.party_counter("net.bytes.in", obs::kReducerParty), 0);
}

TEST(ClusterIntegration, LearnsOnTheCluster) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 50;
  mapreduce::Cluster cluster(cluster_config(5));
  const ClusterRun run =
      run_linear_horizontal_on_cluster(split, params, cluster);
  const double acc =
      svm::accuracy(run.model.predict_all(split.test.x), split.test.y);
  EXPECT_GE(acc, 0.88);
}

TEST(ClusterIntegration, NoRawDataOrPlaintextResultOnTheWire) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 5;
  mapreduce::Cluster cluster(cluster_config(5));

  // Wrap the network with an observation pass after the run: the Network
  // records channels; we assert on sizes. Raw shard matrices are ~N*k*8
  // bytes; a contribution frame is exactly [u32 crc][u64 mapper][u64 round]
  // [u64 length + (k+2) masked u64 words] — far smaller than any shard.
  const ClusterRun run =
      run_linear_horizontal_on_cluster(split, params, cluster);

  const auto& contribution = run.channels.at("contribution");
  const std::size_t k = split.train.features();
  const std::size_t expected_payload = 4 + 8 * (k + 5);
  EXPECT_EQ(contribution.bytes,
            contribution.messages * expected_payload);
  // The training shards never appear on any channel: total traffic is far
  // below one shard's serialized size per message.
  const std::size_t shard_bytes =
      serialize_horizontal_shard(split.train).size() / 4;
  for (const auto& [channel, stats] : run.channels) {
    EXPECT_LT(stats.bytes / std::max<std::size_t>(stats.messages, 1),
              shard_bytes)
        << channel;
  }
}

TEST(ClusterIntegration, MaskedContributionsLookUniform) {
  // Statistical smoke test of masking: capture one mapper's contribution
  // words and check they spread across the full 64-bit range (plaintext
  // fixed-point encodings of O(1) values would cluster near 0 or 2^64).
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 3;
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const crypto::FixedPointCodec codec(params.fixed_point_bits, 4);
  const auto seeds = crypto::agree_pairwise_seeds(4, params.protocol_seed);

  LinearHorizontalLearner learner(partition.shards[0], 4, params);
  crypto::SecureSumParty party(0, 4, codec, seeds[0]);
  const Vector contribution = learner.local_step({});
  const auto masked = party.masked_contribution(contribution, 0);
  const auto plain = codec.encode_vector(contribution);

  std::size_t high_bits_differ = 0;
  for (std::size_t j = 0; j < masked.size(); ++j)
    if ((masked[j] >> 48) != (plain[j] >> 48)) ++high_bits_differ;
  // Every word should be shifted into "random" territory.
  EXPECT_GE(high_bits_differ, masked.size() - 1);
}

TEST(ClusterIntegration, SurvivesTaskFailureInjection) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 10;
  mapreduce::Cluster cluster(cluster_config(5, /*replication=*/2));
  mapreduce::JobConfig job_config;
  job_config.task_failure_probability = 0.3;
  job_config.max_task_attempts = 8;
  const ClusterRun run =
      run_linear_horizontal_on_cluster(split, params, cluster, job_config);
  EXPECT_EQ(run.result.job.rounds, 10u);
  EXPECT_GT(run.result.job.task_retries, 0u);
}

TEST(ClusterIntegration, DataLossAbortsJob) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 10;
  mapreduce::Cluster cluster(cluster_config(5));
  cluster.kill_node(0);  // learner 0's only replica will be dead
  EXPECT_THROW(run_linear_horizontal_on_cluster(split, params, cluster),
               mapreduce::JobError);
}

TEST(ClusterIntegration, VerticalSchemeRunsOnCluster) {
  const auto split = cancer_split();
  const auto partition = data::partition_vertically(split.train, 4, 7);
  AdmmParams params;
  params.max_iterations = 40;

  std::vector<Bytes> shards;
  for (const auto& block : partition.blocks)
    shards.push_back(serialize_vertical_block(block));

  VerticalCoordinator coordinator(partition.y, 4, params);
  const AdmmParams captured = params;
  std::vector<std::shared_ptr<LinearVerticalLearner>> learners(4);
  const LearnerFactory factory = [captured, &learners](mapreduce::BytesView payload,
                                                       std::size_t index) {
    auto learner = std::make_shared<LinearVerticalLearner>(
        deserialize_vertical_block(payload), captured);
    learners[index] = learner;
    return learner;
  };

  mapreduce::Cluster cluster(cluster_config(5));
  const auto result = run_consensus_on_cluster(
      cluster, shards, factory, coordinator, partition.rows(),
      /*reducer_node=*/4, params);
  EXPECT_EQ(result.job.rounds, 40u);

  VerticalLinearModelView view;
  view.feature_indices = partition.feature_indices;
  view.b = coordinator.bias();
  for (const auto& learner : learners) {
    ASSERT_NE(learner, nullptr);
    view.w_blocks.push_back(learner->w());
  }
  const double acc =
      svm::accuracy(view.predict_all(split.test.x), split.test.y);
  EXPECT_GE(acc, 0.88);
}

TEST(ClusterIntegration, ExchangedMaskVariantUsesPeerChannel) {
  const auto split = cancer_split();
  AdmmParams params;
  params.max_iterations = 4;
  params.mask_variant = crypto::MaskVariant::kExchangedMasks;
  mapreduce::Cluster cluster(cluster_config(5));
  const ClusterRun run =
      run_linear_horizontal_on_cluster(split, params, cluster);

  // The literal protocol sends M*(M-1) mask vectors per round.
  const auto& peer = run.channels.at("peer-exchange");
  EXPECT_EQ(peer.messages, 4u * 4u * 3u);
  // And still learns the same model family (sanity: finite values).
  for (double v : run.model.w) EXPECT_TRUE(std::isfinite(v));

  // Seeded variant sends no peer messages at all.
  mapreduce::Cluster cluster2(cluster_config(5));
  AdmmParams seeded = params;
  seeded.mask_variant = crypto::MaskVariant::kSeededMasks;
  const ClusterRun run2 =
      run_linear_horizontal_on_cluster(split, seeded, cluster2);
  EXPECT_EQ(run2.channels.count("peer-exchange"), 0u);
}

}  // namespace
}  // namespace ppml::core
