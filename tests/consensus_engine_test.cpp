// Bit-identity suite for core::ConsensusEngine.
//
// The engine replaced three hand-rolled drivers (run_consensus_in_memory,
// run_consensus_partial_participation, run_consensus_with_dropout) and the
// MapReduce adapter's loop. The refactor's contract is EXACT reproduction:
// for every policy, mask variant and seed, the engine must emit the same
// per-round consensus deltas and the same final model, bit for bit.
//
// To pin that, `seedref` below carries VERBATIM copies of the replaced
// drivers (taken from the pre-refactor tree); every test runs both
// implementations on independently constructed learner stacks and compares
// with EXPECT_EQ — no tolerance anywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "core/consensus.h"
#include "core/consensus_engine.h"
#include "core/linear_horizontal.h"
#include "core/mapreduce_adapter.h"
#include "crypto/dropout_recovery.h"
#include "crypto/secure_sum.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "obs/obs.h"

namespace ppml::core {

// ===========================================================================
// seedref: verbatim copies of the drivers the engine replaced.
// ===========================================================================
namespace seedref {

void record_admm_round(
    const ConsensusCoordinator& coordinator, const Vector& average,
    const Vector& z_prev, double rho,
    const std::vector<std::shared_ptr<ConsensusLearner>>& learners,
    const std::vector<std::size_t>* active) {
  obs::MetricsRegistry* metrics = obs::metrics();
  if (!metrics) return;
  const double delta_sq = coordinator.last_delta_sq();
  metrics->append("admm.z_delta_sq", delta_sq);
  metrics->append("admm.dual_residual_sq", rho * rho * delta_sq);
  double primal = 0.0;
  for (std::size_t j = 0; j < average.size(); ++j) {
    const double z = j < z_prev.size() ? z_prev[j] : 0.0;
    const double d = average[j] - z;
    primal += d * d;
  }
  metrics->append("admm.primal_residual_sq", primal);
  double objective = 0.0;
  bool any = false;
  const auto add_objective = [&](const ConsensusLearner& learner) {
    const double value = learner.last_local_objective();
    if (std::isnan(value)) return;
    objective += value;
    any = true;
  };
  if (active) {
    for (std::size_t i : *active) add_objective(*learners[i]);
  } else {
    for (const auto& learner : learners) add_objective(*learner);
  }
  if (any) metrics->append("admm.objective", objective);
}

ConsensusRunResult run_consensus_in_memory(
    std::vector<std::shared_ptr<ConsensusLearner>>& learners,
    ConsensusCoordinator& coordinator, const AdmmParams& params,
    const RoundObserver& observer) {
  PPML_CHECK(learners.size() >= 2,
             "run_consensus_in_memory: need >= 2 learners");
  const std::size_t m = learners.size();
  const std::size_t dim = learners.front()->contribution_dim();
  for (const auto& learner : learners)
    PPML_CHECK(learner->contribution_dim() == dim,
               "run_consensus_in_memory: contribution dims differ");

  const crypto::FixedPointCodec codec(params.fixed_point_bits, m);

  std::vector<crypto::SecureSumParty> parties;
  parties.reserve(m);
  if (params.mask_variant == crypto::MaskVariant::kSeededMasks) {
    const auto seeds = crypto::agree_pairwise_seeds(m, params.protocol_seed);
    for (std::size_t i = 0; i < m; ++i)
      parties.emplace_back(i, m, codec, seeds[i]);
  } else {
    for (std::size_t i = 0; i < m; ++i)
      parties.emplace_back(i, m, codec,
                           params.protocol_seed ^ (i * 0x9e3779b97f4a7c15ULL));
  }

  const bool parallelize = params.parallel_learners && m > 1 &&
                           std::thread::hardware_concurrency() > 1;
  const auto run_local_steps = [&](const Vector& broadcast_in) {
    std::vector<Vector> contributions(m);
    if (parallelize) {
      std::vector<std::future<Vector>> futures;
      futures.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        futures.push_back(std::async(std::launch::async, [&, i] {
          return learners[i]->local_step(broadcast_in);
        }));
      }
      for (std::size_t i = 0; i < m; ++i) contributions[i] = futures[i].get();
    } else {
      for (std::size_t i = 0; i < m; ++i)
        contributions[i] = learners[i]->local_step(broadcast_in);
    }
    return contributions;
  };

  ConsensusRunResult result;
  Vector broadcast;
  obs::Span job_span("job", "core");
  for (std::size_t round = 0; round < params.max_iterations; ++round) {
    obs::Span iteration_span("iteration", "core");
    iteration_span.arg("round", static_cast<double>(round));
    crypto::SecureSumAggregator aggregator(m, codec);
    std::vector<Vector> contributions;
    {
      obs::Span map_span("map", "core");
      contributions = run_local_steps(broadcast);
    }
    Vector average;
    {
      obs::Span sum_span("secure_sum", "core");
      if (params.mask_variant == crypto::MaskVariant::kSeededMasks) {
        for (std::size_t i = 0; i < m; ++i) {
          aggregator.add(
              parties[i].masked_contribution(contributions[i], round));
        }
      } else {
        std::vector<std::vector<std::vector<std::uint64_t>>> sent(m);
        for (std::size_t i = 0; i < m; ++i)
          sent[i] = parties[i].outgoing_masks(round, dim);
        for (std::size_t i = 0; i < m; ++i) {
          std::vector<std::vector<std::uint64_t>> received(m);
          for (std::size_t j = 0; j < m; ++j)
            if (j != i) received[j] = sent[j][i];
          aggregator.add(
              parties[i].masked_contribution(contributions[i], received, round));
        }
      }
      average = aggregator.average();
    }

    Vector z_prev;
    if (obs::enabled()) z_prev = broadcast;
    {
      obs::Span update_span("admm_update", "core");
      broadcast = coordinator.combine(average);
    }
    record_admm_round(coordinator, average, z_prev, params.rho, learners,
                      nullptr);
    ++result.iterations;
    if (observer) observer(round);
    if (params.convergence_tolerance > 0.0 &&
        coordinator.last_delta_sq() <= params.convergence_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

ConsensusRunResult run_consensus_partial_participation(
    std::vector<std::shared_ptr<ConsensusLearner>>& learners,
    ConsensusCoordinator& coordinator, const AdmmParams& params,
    std::size_t participants_per_round, std::uint64_t sampling_seed,
    const RoundObserver& observer) {
  const std::size_t m = learners.size();
  PPML_CHECK(m >= 2, "partial participation: need >= 2 learners");
  PPML_CHECK(participants_per_round >= 2 && participants_per_round <= m,
             "partial participation: participants must be in [2, M]");
  PPML_CHECK(params.mask_variant == crypto::MaskVariant::kSeededMasks,
             "partial participation: requires the seeded-mask variant");
  const std::size_t dim = learners.front()->contribution_dim();
  for (const auto& learner : learners)
    PPML_CHECK(learner->contribution_dim() == dim,
               "partial participation: contribution dims differ");

  const crypto::FixedPointCodec codec(params.fixed_point_bits,
                                      participants_per_round);
  const auto seeds = crypto::agree_pairwise_seeds(m, params.protocol_seed);
  std::vector<crypto::SecureSumParty> parties;
  parties.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    parties.emplace_back(i, m, codec, seeds[i]);

  crypto::Xoshiro256 sampler(sampling_seed);
  std::vector<std::size_t> ids(m);
  for (std::size_t i = 0; i < m; ++i) ids[i] = i;

  ConsensusRunResult result;
  Vector broadcast;
  obs::Span job_span("job", "core");
  for (std::size_t round = 0; round < params.max_iterations; ++round) {
    obs::Span iteration_span("iteration", "core");
    iteration_span.arg("round", static_cast<double>(round));
    for (std::size_t i = 0; i < participants_per_round; ++i) {
      const std::size_t j = i + sampler.next() % (m - i);
      std::swap(ids[i], ids[j]);
    }
    std::vector<std::size_t> participants(
        ids.begin(),
        ids.begin() + static_cast<std::ptrdiff_t>(participants_per_round));
    std::sort(participants.begin(), participants.end());

    crypto::SecureSumAggregator aggregator(participants_per_round, codec);
    std::vector<Vector> contributions(participants.size());
    {
      obs::Span map_span("map", "core");
      for (std::size_t k = 0; k < participants.size(); ++k)
        contributions[k] = learners[participants[k]]->local_step(broadcast);
    }
    Vector average;
    {
      obs::Span sum_span("secure_sum", "core");
      for (std::size_t k = 0; k < participants.size(); ++k) {
        aggregator.add(parties[participants[k]].masked_contribution_subset(
            contributions[k], round, participants));
      }
      average = aggregator.average();
    }
    Vector z_prev;
    if (obs::enabled()) z_prev = broadcast;
    {
      obs::Span update_span("admm_update", "core");
      broadcast = coordinator.combine(average);
    }
    record_admm_round(coordinator, average, z_prev, params.rho, learners,
                      &participants);
    ++result.iterations;
    if (observer) observer(round);
    if (params.convergence_tolerance > 0.0 &&
        coordinator.last_delta_sq() <= params.convergence_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

ConsensusRunResult run_consensus_with_dropout(
    std::vector<std::shared_ptr<ConsensusLearner>>& learners,
    ConsensusCoordinator& coordinator, const AdmmParams& params,
    const DropoutSchedule& schedule, const RoundObserver& observer) {
  const std::size_t m = learners.size();
  PPML_CHECK(m >= 3, "dropout consensus: need >= 3 learners (Shamir)");
  PPML_CHECK(params.mask_variant == crypto::MaskVariant::kSeededMasks,
             "dropout consensus: requires the seeded-mask variant");
  const std::size_t dim = learners.front()->contribution_dim();
  for (const auto& learner : learners)
    PPML_CHECK(learner->contribution_dim() == dim,
               "dropout consensus: contribution dims differ");

  const crypto::FixedPointCodec codec(params.fixed_point_bits, m);
  const auto seeds = crypto::agree_pairwise_seeds(m, params.protocol_seed);
  std::vector<crypto::SecureSumParty> parties;
  parties.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    parties.emplace_back(i, m, codec, seeds[i]);

  const std::size_t threshold =
      schedule.threshold != 0
          ? schedule.threshold
          : std::clamp<std::size_t>(m / 2 + 1, 2, m - 1);
  const crypto::DropoutRecoverySession session(seeds, threshold,
                                               schedule.sharing_seed);

  std::vector<std::size_t> live(m);
  for (std::size_t i = 0; i < m; ++i) live[i] = i;

  ConsensusRunResult result;
  Vector broadcast;
  obs::Span job_span("job", "core");
  for (std::size_t round = 0; round < params.max_iterations; ++round) {
    obs::Span iteration_span("iteration", "core");
    iteration_span.arg("round", static_cast<double>(round));
    std::vector<std::vector<std::uint64_t>> masked(m);
    std::vector<Vector> local(m);
    {
      obs::Span map_span("map", "core");
      for (std::size_t i : live) local[i] = learners[i]->local_step(broadcast);
    }
    {
      obs::Span sum_span("secure_sum", "core");
      for (std::size_t i : live) {
        masked[i] =
            parties[i].masked_contribution_subset(local[i], round, live);
      }
    }

    std::vector<std::size_t> dropped;
    if (const auto it = schedule.drops.find(round);
        it != schedule.drops.end()) {
      for (std::size_t d : it->second)
        if (std::find(live.begin(), live.end(), d) != live.end())
          dropped.push_back(d);
    }
    std::vector<std::size_t> survivors;
    for (std::size_t i : live)
      if (std::find(dropped.begin(), dropped.end(), i) == dropped.end())
        survivors.push_back(i);
    PPML_CHECK(survivors.size() >= 2,
               "dropout consensus: fewer than 2 survivors");
    if (!dropped.empty())
      PPML_CHECK(survivors.size() >= threshold,
                 "dropout consensus: not enough survivors to reconstruct");

    Vector average(dim);
    {
      obs::Span sum_span("secure_sum", "core");
      std::vector<std::uint64_t> acc(dim, 0);
      for (std::size_t i : survivors) crypto::ring_add_inplace(acc, masked[i]);
      for (std::size_t d : dropped) {
        obs::Span recovery_span("dropout_recovery", "core");
        recovery_span.arg("dropped_party", static_cast<double>(d));
        std::vector<std::uint64_t> reconstructed(m, 0);
        for (std::size_t j : survivors) {
          std::vector<crypto::ShamirShare> shares;
          for (std::size_t h = 0; h < threshold; ++h)
            shares.push_back(session.share(survivors[h], d, j));
          reconstructed[j] =
              crypto::DropoutRecoverySession::reconstruct_seed(shares);
        }
        crypto::ring_add_inplace(
            acc, crypto::DropoutRecoverySession::mask_correction(
                     d, survivors, reconstructed, round, dim));
      }
      const std::vector<double> sum = codec.decode_vector(acc);
      for (std::size_t j = 0; j < dim; ++j)
        average[j] = sum[j] / static_cast<double>(survivors.size());
    }

    if (!dropped.empty()) {
      live = survivors;
      for (std::size_t i : live)
        learners[i]->on_cohort_resize(live.size());
    }

    Vector z_prev;
    if (obs::enabled()) z_prev = broadcast;
    {
      obs::Span update_span("admm_update", "core");
      broadcast = coordinator.combine(average);
    }
    record_admm_round(coordinator, average, z_prev, params.rho, learners,
                      &live);
    ++result.iterations;
    if (observer) observer(round);
    if (params.convergence_tolerance > 0.0 &&
        coordinator.last_delta_sq() <= params.convergence_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace seedref

namespace {

data::HorizontalPartition make_partition(std::size_t m) {
  data::GaussianTaskConfig task;
  task.samples = 160;
  task.features = 6;
  task.separation = 1.6;
  task.seed = 11;
  task.name = "engine-bit-identity";
  data::Dataset train = data::make_gaussian_task(task);
  data::StandardScaler scaler;
  scaler.fit(train.x);
  scaler.transform(train.x);
  return data::partition_horizontally(train, m, 5);
}

std::vector<std::shared_ptr<ConsensusLearner>> make_learners(
    const data::HorizontalPartition& partition, const AdmmParams& params) {
  std::vector<std::shared_ptr<ConsensusLearner>> learners;
  for (const data::Dataset& shard : partition.shards)
    learners.push_back(std::make_shared<LinearHorizontalLearner>(
        shard, partition.learners(), params));
  return learners;
}

/// Everything one run produces that must match bit for bit.
struct RunRecord {
  ConsensusRunResult run;
  std::vector<double> deltas;  ///< per-round ||dz||^2 from the observer
  Vector z;
  double s = 0.0;
};

using Driver = std::function<ConsensusRunResult(
    std::vector<std::shared_ptr<ConsensusLearner>>&, ConsensusCoordinator&,
    const RoundObserver&)>;

RunRecord run_driver(const data::HorizontalPartition& partition,
                     const AdmmParams& params, const Driver& driver) {
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  RunRecord record;
  const RoundObserver observer = [&](std::size_t) {
    record.deltas.push_back(coordinator.last_delta_sq());
  };
  record.run = driver(learners, coordinator, observer);
  record.z = coordinator.z();
  record.s = coordinator.s();
  return record;
}

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.run.iterations, b.run.iterations);
  EXPECT_EQ(a.run.converged, b.run.converged);
  EXPECT_EQ(a.deltas, b.deltas);  // exact double equality, element-wise
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.s, b.s);
}

AdmmParams base_params(std::uint64_t protocol_seed) {
  AdmmParams params;
  params.max_iterations = 8;
  params.convergence_tolerance = 0.0;  // fixed-length runs compare all rounds
  params.protocol_seed = protocol_seed;
  return params;
}

constexpr std::uint64_t kProtocolSeeds[] = {1, 0x5eedULL, 0xDEADBEEFULL};

// ---------------------------------------------------------------------------
// Engine + InMemoryTransport vs the seed in-memory driver.
// ---------------------------------------------------------------------------

TEST(ConsensusEngineBitIdentity, FullParticipationSeededMasksMultiSeed) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams params = base_params(seed);
    const RunRecord reference = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          return seedref::run_consensus_in_memory(learners, coordinator,
                                                  params, observer);
        });
    const RunRecord engine_run = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    expect_identical(reference, engine_run);
  }
}

TEST(ConsensusEngineBitIdentity, FullParticipationExchangedMasksMultiSeed) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    AdmmParams params = base_params(seed);
    params.mask_variant = crypto::MaskVariant::kExchangedMasks;
    const RunRecord reference = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          return seedref::run_consensus_in_memory(learners, coordinator,
                                                  params, observer);
        });
    const RunRecord engine_run = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    expect_identical(reference, engine_run);
  }
}

TEST(ConsensusEngineBitIdentity, PartialParticipationMultiSeed) {
  const auto partition = make_partition(5);
  for (const std::uint64_t seed : kProtocolSeeds) {
    for (const std::size_t per_round : {2u, 3u}) {
      for (const std::uint64_t sampling_seed : {9ULL, 77ULL}) {
        const AdmmParams params = base_params(seed);
        const RunRecord reference = run_driver(
            partition, params,
            [&](auto& learners, auto& coordinator,
                const RoundObserver& observer) {
              return seedref::run_consensus_partial_participation(
                  learners, coordinator, params, per_round, sampling_seed,
                  observer);
            });
        const RunRecord engine_run = run_driver(
            partition, params,
            [&](auto& learners, auto& coordinator,
                const RoundObserver& observer) {
              PartialParticipation policy(per_round, sampling_seed);
              ConsensusEngine engine(learners, coordinator, params, policy);
              InMemoryTransport transport;
              return engine.run(transport, observer);
            });
        expect_identical(reference, engine_run);
      }
    }
  }
}

TEST(ConsensusEngineBitIdentity, ScheduledDropoutMultiSeed) {
  const auto partition = make_partition(5);
  DropoutSchedule schedule;
  schedule.drops[2] = {1};
  schedule.drops[5] = {3};
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams params = base_params(seed);
    const RunRecord reference = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          return seedref::run_consensus_with_dropout(learners, coordinator,
                                                     params, schedule,
                                                     observer);
        });
    const RunRecord engine_run = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          ScheduledDropout policy(schedule);
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    expect_identical(reference, engine_run);
  }
}

TEST(ConsensusEngineBitIdentity, DropoutWithExplicitThresholdAndSharingSeed) {
  const auto partition = make_partition(5);
  DropoutSchedule schedule;
  schedule.drops[1] = {0, 4};
  schedule.threshold = 2;
  schedule.sharing_seed = 0xFEEDULL;
  const AdmmParams params = base_params(0x5eedULL);
  const RunRecord reference = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return seedref::run_consensus_with_dropout(learners, coordinator,
                                                   params, schedule, observer);
      });
  const RunRecord engine_run = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        ScheduledDropout policy(schedule);
        ConsensusEngine engine(learners, coordinator, params, policy);
        InMemoryTransport transport;
        return engine.run(transport, observer);
      });
  expect_identical(reference, engine_run);
}

// The compatibility wrappers must be indistinguishable from the engine they
// configure (and therefore from the seed drivers).
TEST(ConsensusEngineBitIdentity, CompatibilityWrappersDelegateExactly) {
  const auto partition = make_partition(4);
  const AdmmParams params = base_params(0xABCDEFULL);

  const RunRecord reference = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return seedref::run_consensus_in_memory(learners, coordinator, params,
                                                observer);
      });
  const RunRecord wrapper = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return run_consensus_in_memory(learners, coordinator, params,
                                       observer);
      });
  expect_identical(reference, wrapper);

  const RunRecord partial_reference = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return seedref::run_consensus_partial_participation(
            learners, coordinator, params, 3, 21, observer);
      });
  const RunRecord partial_wrapper = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return run_consensus_partial_participation(learners, coordinator,
                                                   params, 3, 21, observer);
      });
  expect_identical(partial_reference, partial_wrapper);

  DropoutSchedule schedule;
  schedule.drops[3] = {2};
  const RunRecord dropout_reference = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return seedref::run_consensus_with_dropout(learners, coordinator,
                                                   params, schedule, observer);
      });
  const RunRecord dropout_wrapper = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return run_consensus_with_dropout(learners, coordinator, params,
                                          schedule, observer);
      });
  expect_identical(dropout_reference, dropout_wrapper);
}

// Early convergence must trip on exactly the same round.
TEST(ConsensusEngineBitIdentity, ConvergenceStopsOnTheSameRound) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(7);
  params.max_iterations = 200;
  params.convergence_tolerance = 1e-3;
  const RunRecord reference = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        return seedref::run_consensus_in_memory(learners, coordinator, params,
                                                observer);
      });
  const RunRecord engine_run = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        FullParticipation policy;
        ConsensusEngine engine(learners, coordinator, params, policy);
        InMemoryTransport transport;
        return engine.run(transport, observer);
      });
  EXPECT_TRUE(engine_run.run.converged);
  expect_identical(reference, engine_run);
}

// ---------------------------------------------------------------------------
// FabricTransport vs InMemoryTransport under a zero-fault plan.
// ---------------------------------------------------------------------------

RunRecord run_on_cluster(const data::HorizontalPartition& partition,
                         const AdmmParams& params) {
  const std::size_t m = partition.learners();
  mapreduce::ClusterConfig config;
  config.num_nodes = m + 1;
  config.fault_plan = mapreduce::FaultPlan{};  // explicitly fault-free
  mapreduce::Cluster cluster(config);

  std::vector<mapreduce::Bytes> shards;
  shards.reserve(m);
  for (const data::Dataset& shard : partition.shards)
    shards.push_back(serialize_horizontal_shard(shard));
  const LearnerFactory factory = [&](mapreduce::BytesView payload,
                                     std::size_t) {
    return std::make_shared<LinearHorizontalLearner>(
        deserialize_horizontal_shard(payload), m, params);
  };

  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  const ClusterTrainResult cluster_run = run_consensus_on_cluster(
      cluster, shards, factory, coordinator,
      partition.shards.front().features() + 1,
      /*reducer_node=*/m, params);

  RunRecord record;
  record.run = cluster_run.run;
  record.deltas = cluster_run.delta_trace;
  record.z = coordinator.z();
  record.s = coordinator.s();
  return record;
}

TEST(ConsensusEngineBitIdentity, FabricMatchesInMemoryZeroFaultSeeded) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams params = base_params(seed);
    const RunRecord in_memory = run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    const RunRecord fabric = run_on_cluster(partition, params);
    expect_identical(in_memory, fabric);
  }
}

TEST(ConsensusEngineBitIdentity, FabricMatchesInMemoryZeroFaultExchanged) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(0x5eedULL);
  params.mask_variant = crypto::MaskVariant::kExchangedMasks;
  const RunRecord in_memory = run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        FullParticipation policy;
        ConsensusEngine engine(learners, coordinator, params, policy);
        InMemoryTransport transport;
        return engine.run(transport, observer);
      });
  const RunRecord fabric = run_on_cluster(partition, params);
  expect_identical(in_memory, fabric);
}

// ---------------------------------------------------------------------------
// Async bounded staleness: Q = M with no deadline degenerates to sync.
// ---------------------------------------------------------------------------

AdmmParams async_degenerate_params(std::uint64_t seed) {
  AdmmParams params = base_params(seed);
  params.async_quorum_fraction = 1.0;  // quorum = M: every round closes full
  params.async_round_deadline = 0.0;   // and no deadline ever fires
  return params;
}

TEST(AsyncConsensusBitIdentity, QuorumMNoDeadlineEqualsSyncInMemory) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams sync_params = base_params(seed);
    const AdmmParams async_params = async_degenerate_params(seed);
    const RunRecord sync_run = run_driver(
        partition, sync_params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, sync_params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    const RunRecord async_run = run_driver(
        partition, async_params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          BoundedStalenessPolicy policy;
          ConsensusEngine engine(learners, coordinator, async_params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
    expect_identical(sync_run, async_run);
    // Delay-free async ticks exactly one nominal second per round and never
    // expires a deadline or drops a party.
    EXPECT_EQ(async_run.run.async_seconds,
              static_cast<double>(async_run.run.iterations));
    EXPECT_EQ(async_run.run.deadline_expirations, 0u);
    EXPECT_EQ(async_run.run.staleness_drops, 0u);
  }
}

TEST(AsyncConsensusBitIdentity, QuorumMNoDeadlineEqualsSyncOnFabric) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const RunRecord sync_run = run_on_cluster(partition, base_params(seed));
    const RunRecord async_run =
        run_on_cluster(partition, async_degenerate_params(seed));
    expect_identical(sync_run, async_run);
  }
}

// ---------------------------------------------------------------------------
// Batched-session counters: the refactor's measurable win.
// ---------------------------------------------------------------------------

TEST(ConsensusEngineCounters, ExchangedVariantDerivesEachMaskStreamOnce) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(3);
  params.mask_variant = crypto::MaskVariant::kExchangedMasks;
  const std::size_t m = partition.learners();
  const std::size_t rounds = params.max_iterations;

  obs::MetricsRegistry metrics;
  {
    obs::Session session(nullptr, &metrics);
    (void)run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
  }
  // One ChaCha stream per ordered pair per round — the legacy driver
  // derived each twice (once for the exchange, once inside the masking
  // call), i.e. 2 * rounds * m * (m-1).
  EXPECT_EQ(metrics.counter("crypto.masks_generated"),
            static_cast<std::int64_t>(rounds * m * (m - 1)));
  EXPECT_EQ(metrics.counter("crypto.sum.contributions"),
            static_cast<std::int64_t>(rounds * m));
  EXPECT_EQ(metrics.counter("crypto.masked_contributions"),
            static_cast<std::int64_t>(rounds * m));
}

TEST(ConsensusEngineCounters, BatchedElemsCountWireVolume) {
  const auto partition = make_partition(4);
  const AdmmParams params = base_params(3);
  const std::size_t m = partition.learners();
  const std::size_t rounds = params.max_iterations;
  const std::size_t dim = partition.shards.front().features() + 1;

  obs::MetricsRegistry metrics;
  {
    obs::Session session(nullptr, &metrics);
    (void)run_driver(
        partition, params,
        [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
          FullParticipation policy;
          ConsensusEngine engine(learners, coordinator, params, policy);
          InMemoryTransport transport;
          return engine.run(transport, observer);
        });
  }
  EXPECT_EQ(metrics.counter("crypto.sum.batched_elems"),
            static_cast<std::int64_t>(rounds * m * dim));
  EXPECT_EQ(metrics.counter("crypto.sum.batched_tensors"),
            static_cast<std::int64_t>(rounds * m));
  // One codec pass per contribution: dim encodes per learner per round.
  EXPECT_EQ(metrics.counter("crypto.fp_encode"),
            static_cast<std::int64_t>(rounds * m * dim));
}

// Instrumented runs must still be bit-identical to bare runs.
TEST(ConsensusEngineCounters, MetricsDoNotPerturbTraining) {
  const auto partition = make_partition(4);
  const AdmmParams params = base_params(17);
  const auto engine_driver = [&](auto& learners, auto& coordinator,
                                 const RoundObserver& observer) {
    FullParticipation policy;
    ConsensusEngine engine(learners, coordinator, params, policy);
    InMemoryTransport transport;
    return engine.run(transport, observer);
  };
  const RunRecord bare = run_driver(partition, params, engine_driver);
  obs::MetricsRegistry metrics;
  RunRecord instrumented;
  {
    obs::Session session(nullptr, &metrics);
    instrumented = run_driver(partition, params, engine_driver);
  }
  expect_identical(bare, instrumented);
  EXPECT_FALSE(metrics.series("admm.z_delta_sq").empty());
}

// ---------------------------------------------------------------------------
// Divergence watchdog.
// ---------------------------------------------------------------------------

TEST(DivergenceWatchdog, TripsOnMonotonePrimalGrowth) {
  DivergenceWatchdog dog(DivergenceWatchdog::Config{4, 1e-3, 1e-8});
  EXPECT_FALSE(dog.feed(1.0, 1.0));
  EXPECT_FALSE(dog.feed(2.0, 0.5));
  EXPECT_FALSE(dog.feed(3.0, 1.5));  // window not yet full
  EXPECT_TRUE(dog.feed(4.0, 0.7));   // 4 strictly growing primals
  EXPECT_TRUE(dog.tripped());
  EXPECT_EQ(dog.reason(), "divergence:primal");
  EXPECT_FALSE(dog.feed(5.0, 0.8));  // latched: reports once
}

TEST(DivergenceWatchdog, TripsOnMonotoneDualGrowth) {
  DivergenceWatchdog dog(DivergenceWatchdog::Config{3, 1e-3, 1e-8});
  EXPECT_FALSE(dog.feed(5.0, 1.0));
  EXPECT_FALSE(dog.feed(1.0, 2.0));  // primal non-monotone
  EXPECT_TRUE(dog.feed(6.0, 3.0));
  EXPECT_EQ(dog.reason(), "divergence:dual");
}

TEST(DivergenceWatchdog, TripsOnStallAboveFloor) {
  DivergenceWatchdog dog(DivergenceWatchdog::Config{4, 1e-3, 1e-8});
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(dog.feed(5.0, 1.0));
  EXPECT_TRUE(dog.feed(5.0, 1.0));  // flat for a full window, above floor
  EXPECT_EQ(dog.reason(), "stall");
}

TEST(DivergenceWatchdog, SilentOnConvergenceAndBelowTheFloor) {
  // A geometrically decaying residual series — the healthy Fig. 4 shape —
  // must never trip, including its flat tail once it sinks under the floor.
  DivergenceWatchdog dog(DivergenceWatchdog::Config{4, 1e-3, 1e-8});
  double primal = 1.0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(dog.feed(primal, primal * 0.5)) << "round " << i;
    primal = std::max(primal * 0.5, 1e-12);  // plateaus below stall_floor
  }
  EXPECT_FALSE(dog.tripped());
}

TEST(DivergenceWatchdog, TripsOnSustainedStaleness) {
  DivergenceWatchdog::Config config{3, 1e-3, 1e-8};
  config.staleness_limit = 2.0;
  DivergenceWatchdog dog(config);
  // Healthy residual decay — only the staleness channel is unhealthy.
  EXPECT_FALSE(dog.feed(1.0, 0.9, 5.0));
  EXPECT_FALSE(dog.feed(0.5, 0.4, 5.0));  // window not yet full
  EXPECT_TRUE(dog.feed(0.25, 0.2, 5.0));  // window mean 5 > limit 2
  EXPECT_EQ(dog.reason(), "staleness");
}

TEST(DivergenceWatchdog, StalenessDisabledByDefault) {
  DivergenceWatchdog dog(DivergenceWatchdog::Config{3, 1e-3, 1e-8});
  EXPECT_FALSE(dog.feed(1.0, 0.9, 100.0));
  EXPECT_FALSE(dog.feed(0.5, 0.4, 100.0));
  EXPECT_FALSE(dog.feed(0.25, 0.2, 100.0));
  EXPECT_FALSE(dog.tripped());
}

// Satellite bugfix: a tripped watchdog's reason must surface in the
// ConsensusRunResult, not only on the engine accessor.
TEST(DivergenceWatchdog, TripReasonSurfacesInRunResult) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(17);
  params.max_iterations = 8;
  params.watchdog_window = 3;
  params.watchdog_stall_epsilon = 1e9;  // accept-anything: trip on window 1
  params.watchdog_stall_floor = 0.0;
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  FullParticipation policy;
  ConsensusEngine engine(learners, coordinator, params, policy);
  obs::MetricsRegistry metrics;
  ConsensusRunResult result;
  {
    obs::Session session(nullptr, &metrics);  // watchdog is observational
    InMemoryTransport transport;
    result = engine.run(transport);
  }
  EXPECT_TRUE(result.watchdog_tripped);
  EXPECT_EQ(result.watchdog_reason, "stall");
}

TEST(DivergenceWatchdog, RejectsDegenerateConfig) {
  EXPECT_THROW(DivergenceWatchdog(DivergenceWatchdog::Config{2, 1e-3, 0.0}),
               Error);
  EXPECT_THROW(DivergenceWatchdog(DivergenceWatchdog::Config{4, 0.0, 0.0}),
               Error);
}

TEST(DivergenceWatchdog, EngineStaysSilentOnAConvergentRun) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(17);
  params.max_iterations = 12;
  params.watchdog_window = 5;
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  FullParticipation policy;
  ConsensusEngine engine(learners, coordinator, params, policy);
  obs::MetricsRegistry metrics;
  {
    obs::Session session(nullptr, &metrics);
    InMemoryTransport transport;
    engine.run(transport);
  }
  ASSERT_NE(engine.watchdog(), nullptr);
  EXPECT_FALSE(engine.watchdog()->tripped());
  EXPECT_EQ(metrics.counter("admm.watchdog.trips"), 0);
}

TEST(DivergenceWatchdog, EngineTripReportsOnceAndDumpsTheRing) {
  const auto partition = make_partition(4);
  AdmmParams params = base_params(17);
  params.max_iterations = 8;
  params.watchdog_window = 3;
  // Accept-anything stall threshold: the watchdog must trip on the first
  // full window, deterministically — this pins the engine-side reporting
  // (counter, flight event, automatic dump), not the detector thresholds.
  params.watchdog_stall_epsilon = 1e9;
  params.watchdog_stall_floor = 0.0;
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  FullParticipation policy;
  ConsensusEngine engine(learners, coordinator, params, policy);
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(256);
  const std::string dump_path = "engine_watchdog_dump.json";
  std::remove(dump_path.c_str());
  recorder.arm_auto_dump(dump_path);
  {
    obs::Session session(nullptr, &metrics, &recorder);
    InMemoryTransport transport;
    engine.run(transport);
  }
  ASSERT_NE(engine.watchdog(), nullptr);
  EXPECT_TRUE(engine.watchdog()->tripped());
  EXPECT_EQ(metrics.counter("admm.watchdog.trips"), 1);  // latched
  bool saw_watchdog_event = false;
  for (const auto& event : recorder.snapshot())
    saw_watchdog_event |= event.kind == obs::FlightEventKind::kWatchdog;
  EXPECT_TRUE(saw_watchdog_event);
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "watchdog trip did not dump the ring";
  std::stringstream buffer;
  buffer << dump.rdbuf();
  EXPECT_NE(buffer.str().find("\"reason\": \"watchdog:stall\""),
            std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(DivergenceWatchdog, DisabledByDefault) {
  const auto partition = make_partition(4);
  const AdmmParams params = base_params(17);
  auto learners = make_learners(partition, params);
  AveragingCoordinator coordinator(partition.shards.front().features() + 1);
  FullParticipation policy;
  ConsensusEngine engine(learners, coordinator, params, policy);
  EXPECT_EQ(engine.watchdog(), nullptr);
}

// ---------------------------------------------------------------------------
// Grouped-ring aggregation topology vs pairwise: every mask edge cancels in
// the reducer's ring sum either way, so full training runs must be
// bit-identical — per-round deltas, final z, final s, all EXPECT_EQ.
// ---------------------------------------------------------------------------

RunRecord run_full_participation(const data::HorizontalPartition& partition,
                                 const AdmmParams& params) {
  return run_driver(
      partition, params,
      [&](auto& learners, auto& coordinator, const RoundObserver& observer) {
        FullParticipation policy;
        ConsensusEngine engine(learners, coordinator, params, policy);
        InMemoryTransport transport;
        return engine.run(transport, observer);
      });
}

TEST(GroupedRingTopology, MatchesPairwiseM4MultiSeed) {
  const auto partition = make_partition(4);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams pairwise = base_params(seed);
    AdmmParams grouped = pairwise;
    grouped.agg_topology = crypto::AggregationTopology::kGroupedRing;
    expect_identical(run_full_participation(partition, pairwise),
                     run_full_participation(partition, grouped));
  }
}

TEST(GroupedRingTopology, MatchesPairwiseM8MultiSeedAndGroupSizes) {
  const auto partition = make_partition(8);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams pairwise = base_params(seed);
    const RunRecord reference = run_full_participation(partition, pairwise);
    // 0 = auto ceil(sqrt(8)) = 3 (ragged groups 3/3/2); 2 and 5 exercise
    // the even cut and an oversized last group.
    for (const std::size_t group_size : {0u, 2u, 5u}) {
      AdmmParams grouped = pairwise;
      grouped.agg_topology = crypto::AggregationTopology::kGroupedRing;
      grouped.agg_group_size = group_size;
      expect_identical(reference, run_full_participation(partition, grouped));
    }
  }
}

TEST(GroupedRingTopology, PartialParticipationMatchesPairwise) {
  // Per-round participant subsets re-derive the group layout every round;
  // the sampler sequence is topology-independent, so the runs must agree.
  const auto partition = make_partition(6);
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams pairwise = base_params(seed);
    AdmmParams grouped = pairwise;
    grouped.agg_topology = crypto::AggregationTopology::kGroupedRing;
    grouped.agg_group_size = 2;
    const auto partial_driver = [&](const AdmmParams& params) {
      return run_driver(
          partition, params,
          [&](auto& learners, auto& coordinator,
              const RoundObserver& observer) {
            PartialParticipation policy(/*participants_per_round=*/4,
                                        /*sampling_seed=*/99);
            ConsensusEngine engine(learners, coordinator, params, policy);
            InMemoryTransport transport;
            return engine.run(transport, observer);
          });
    };
    expect_identical(partial_driver(pairwise), partial_driver(grouped));
  }
}

TEST(GroupedRingTopology, ScheduledDropoutMatchesPairwise) {
  // A post-mask drop under the grouped topology takes the sparse recovery
  // path (only the victim's edge neighbors' seeds are reconstructed); the
  // corrected rounds must still match pairwise recovery bit for bit.
  const auto partition = make_partition(6);
  DropoutSchedule schedule;
  schedule.drops[2] = {1};
  schedule.drops[4] = {5};
  for (const std::uint64_t seed : kProtocolSeeds) {
    const AdmmParams pairwise = base_params(seed);
    AdmmParams grouped = pairwise;
    grouped.agg_topology = crypto::AggregationTopology::kGroupedRing;
    grouped.agg_group_size = 3;
    const auto dropout_driver = [&](const AdmmParams& params) {
      return run_driver(
          partition, params,
          [&](auto& learners, auto& coordinator,
              const RoundObserver& observer) {
            ScheduledDropout policy(schedule);
            ConsensusEngine engine(learners, coordinator, params, policy);
            InMemoryTransport transport;
            return engine.run(transport, observer);
          });
    };
    expect_identical(dropout_driver(pairwise), dropout_driver(grouped));
  }
}

TEST(GroupedRingTopology, FabricMatchesInMemoryZeroFault) {
  // Zero call-site changes: the fabric mappers derive the grouped edge set
  // from the engine's session config and must reproduce the in-memory
  // grouped run exactly.
  const auto partition = make_partition(8);
  for (const std::uint64_t seed : kProtocolSeeds) {
    AdmmParams params = base_params(seed);
    params.agg_topology = crypto::AggregationTopology::kGroupedRing;
    const RunRecord in_memory = run_full_participation(partition, params);
    const RunRecord fabric = run_on_cluster(partition, params);
    expect_identical(in_memory, fabric);
  }
}

TEST(GroupedRingTopology, EngineRekeyPreservesTopology) {
  // The rekey path rebuilds the session from its own config: the topology
  // (and group size) must survive the epoch change, and the fresh epoch is
  // unpinned again.
  AveragingCoordinator coordinator(3);
  AdmmParams params = base_params(0x5eed);
  params.agg_topology = crypto::AggregationTopology::kGroupedRing;
  params.agg_group_size = 3;
  FullParticipation policy;
  ConsensusEngine engine(/*num_learners=*/9, coordinator, params, policy);
  engine.rekey(/*epoch=*/1);
  EXPECT_EQ(engine.session().topology(),
            crypto::AggregationTopology::kGroupedRing);
  EXPECT_EQ(engine.session().config().group_size, 3u);
  EXPECT_EQ(engine.session().epoch(), 1u);
  EXPECT_FALSE(engine.session().epoch_active());
}

}  // namespace
}  // namespace ppml::core
