#include <gtest/gtest.h>

#include "crypto/dropout_recovery.h"

namespace ppml::crypto {
namespace {

struct ProtocolFixture {
  std::size_t parties;
  FixedPointCodec codec{20, 8};
  std::vector<std::vector<std::uint64_t>> seeds;
  std::vector<std::vector<double>> values;

  explicit ProtocolFixture(std::size_t m) : parties(m) {
    seeds = agree_pairwise_seeds(m, 42);
    values.resize(m);
    Xoshiro256 rng(m);
    for (auto& v : values) {
      v.resize(5);
      for (double& x : v) x = rng.next_double() * 20.0 - 10.0;
    }
  }

  std::vector<std::uint64_t> contribution(std::size_t party,
                                          std::size_t round) const {
    SecureSumParty p(party, parties, codec, seeds[party]);
    return p.masked_contribution(values[party], round);
  }

  std::vector<double> survivor_expected(std::size_t dropped) const {
    std::vector<double> expected(5, 0.0);
    for (std::size_t i = 0; i < parties; ++i) {
      if (i == dropped) continue;
      for (std::size_t j = 0; j < 5; ++j) expected[j] += values[i][j];
    }
    return expected;
  }
};

TEST(DropoutRecovery, WithoutRecoveryTheSumIsGarbage) {
  ProtocolFixture setup(4);
  std::vector<std::uint64_t> total(5, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;  // party 2 drops
    ring_add_inplace(total, setup.contribution(i, 0));
  }
  const auto decoded = setup.codec.decode_vector(total);
  const auto expected = setup.survivor_expected(2);
  // Uncancelled masks => decoded values are wildly off.
  bool any_far = false;
  for (std::size_t j = 0; j < 5; ++j)
    if (std::abs(decoded[j] - expected[j]) > 1.0) any_far = true;
  EXPECT_TRUE(any_far);
}

class DropoutRecoveryParties
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DropoutRecoveryParties, RecoversExactSurvivorSum) {
  const auto [m, dropped] = GetParam();
  ProtocolFixture setup(m);
  DropoutRecoverySession session(setup.seeds, /*threshold=*/2, 7);

  std::vector<std::size_t> survivors;
  std::vector<std::vector<std::uint64_t>> contributions;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == dropped) continue;
    survivors.push_back(i);
    contributions.push_back(setup.contribution(i, /*round=*/3));
  }

  const auto recovered = recover_survivor_sum(
      session, contributions, survivors, dropped, /*round=*/3, setup.codec);
  const auto expected = setup.survivor_expected(dropped);
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(recovered[j], expected[j], 1e-4) << "entry " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DropoutRecoveryParties,
    ::testing::Values(std::make_tuple(3u, 0u), std::make_tuple(4u, 2u),
                      std::make_tuple(5u, 4u), std::make_tuple(8u, 3u)));

TEST(DropoutRecovery, SharesReconstructSeeds) {
  ProtocolFixture setup(5);
  DropoutRecoverySession session(setup.seeds, 3, 9);
  // Any 3 holders' shares of pair (1, 4) reconstruct the true seed.
  std::vector<ShamirShare> revealed{session.share(0, 1, 4),
                                    session.share(2, 1, 4),
                                    session.share(4, 1, 4)};
  EXPECT_EQ(DropoutRecoverySession::reconstruct_seed(revealed),
            setup.seeds[1][4]);
  // Fewer than threshold shares give the wrong value.
  std::vector<ShamirShare> too_few{session.share(0, 1, 4),
                                   session.share(2, 1, 4)};
  EXPECT_NE(DropoutRecoverySession::reconstruct_seed(too_few),
            setup.seeds[1][4]);
}

TEST(DropoutRecovery, ValidatesInputs) {
  ProtocolFixture setup(4);
  EXPECT_THROW(DropoutRecoverySession(setup.seeds, 1, 1), InvalidArgument);
  EXPECT_THROW(DropoutRecoverySession(setup.seeds, 4, 1), InvalidArgument);

  DropoutRecoverySession session(setup.seeds, 2, 1);
  EXPECT_THROW(session.share(0, 1, 1), InvalidArgument);
  EXPECT_THROW(session.share(9, 0, 1), InvalidArgument);

  // Not enough survivors to hit the threshold.
  DropoutRecoverySession strict(setup.seeds, 3, 1);
  std::vector<std::vector<std::uint64_t>> contributions{
      setup.contribution(0, 0), setup.contribution(1, 0)};
  EXPECT_THROW(recover_survivor_sum(strict, contributions, {0, 1}, 3, 0,
                                    setup.codec),
               InvalidArgument);
}

TEST(DropoutRecovery, AsymmetricSeedMatrixRejected) {
  ProtocolFixture setup(3);
  auto seeds = setup.seeds;
  seeds[0][1] ^= 1;
  EXPECT_THROW(DropoutRecoverySession(seeds, 2, 1), InvalidArgument);
}

}  // namespace
}  // namespace ppml::crypto
