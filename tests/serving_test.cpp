// core::PredictionServer: micro-batched secure serving must be a pure
// re-batching of the per-query secure prediction path — bit-identical
// decision values — with deterministic admission and flush behavior on the
// virtual clock, and real kernel-row reuse across batches.
#include <gtest/gtest.h>

#include <vector>

#include "core/prediction_server.h"
#include "core/vertical.h"
#include "data/generators.h"
#include "data/standardize.h"

namespace ppml::core {
namespace {

data::SplitDataset cancer_split(unsigned seed) {
  auto split = data::train_test_split(data::make_cancer_like(seed), 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(split);
  return split;
}

AdmmParams fast_params(std::size_t iterations = 20) {
  AdmmParams params;
  params.max_iterations = iterations;
  return params;
}

linalg::Matrix one_row(std::span<const double> x) {
  linalg::Matrix m(1, x.size());
  for (std::size_t j = 0; j < x.size(); ++j) m(0, j) = x[j];
  return m;
}

// Drive `queries` rows through the server on a fixed virtual arrival
// schedule and return the results ordered by query id.
std::vector<ServeResult> serve_all(PredictionServer& server,
                                   const linalg::Matrix& x,
                                   std::size_t queries, double dt) {
  std::vector<ServeResult> all;
  for (std::size_t i = 0; i < queries; ++i) {
    const double now = static_cast<double>(i) * dt;
    server.advance(now);
    const auto outcome =
        server.submit(/*client_id=*/i % 4, x.row(i % x.rows()), now);
    EXPECT_EQ(outcome, AdmissionOutcome::kQueued);
  }
  server.drain(static_cast<double>(queries) * dt);
  auto batch = server.take_results();
  all.insert(all.end(), batch.begin(), batch.end());
  std::sort(all.begin(), all.end(),
            [](const ServeResult& a, const ServeResult& b) {
              return a.query_id < b.query_id;
            });
  return all;
}

TEST(PredictionServing, LinearBatchedBitIdenticalToPerQuery) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const auto split = cancer_split(seed);
    const auto partition = data::partition_vertically(split.train, 3, 7);
    const auto params = fast_params();
    const auto trained = train_linear_vertical(partition, params, nullptr);

    ServingConfig config;
    config.max_batch = 16;
    config.max_linger = 0.004;
    PredictionServer server(trained.model, params, config);

    const std::size_t queries = 50;
    const auto results = serve_all(server, split.test.x, queries, 0.001);
    ASSERT_EQ(results.size(), queries);
    EXPECT_GT(server.stats().batches, 1u);  // actually micro-batched

    for (std::size_t i = 0; i < queries; ++i) {
      // Per-query reference: fresh one-shot session, round 0. Masks cancel
      // exactly in the ring and the codec is per-element, so batching and
      // round number must not change a single bit.
      const Vector reference = secure_vertical_decision_values(
          trained.model, one_row(split.test.x.row(i % split.test.x.rows())),
          params);
      EXPECT_EQ(results[i].decision_value, reference[0])
          << "seed " << seed << " query " << i;
    }
  }
}

TEST(PredictionServing, KernelBatchedBitIdenticalToPerQuery) {
  for (unsigned seed : {1u, 5u}) {
    const auto split = cancer_split(seed);
    const auto partition = data::partition_vertically(split.train, 3, 7);
    const auto params = fast_params(15);
    const auto trained = train_kernel_vertical(partition, svm::Kernel::rbf(0.3),
                                               params, nullptr);

    ServingConfig config;
    config.max_batch = 8;
    config.max_linger = 0.004;
    config.cache_slots = 16;
    PredictionServer server(trained.model, params, config);

    const std::size_t queries = 40;
    const auto results = serve_all(server, split.test.x, queries, 0.001);
    ASSERT_EQ(results.size(), queries);

    for (std::size_t i = 0; i < queries; ++i) {
      const Vector reference = secure_vertical_decision_values(
          trained.model, one_row(split.test.x.row(i % split.test.x.rows())),
          params);
      EXPECT_EQ(results[i].decision_value, reference[0])
          << "seed " << seed << " query " << i;
    }
  }
}

TEST(PredictionServing, KernelRowCacheReusedAcrossBatches) {
  const auto split = cancer_split(3);
  const auto partition = data::partition_vertically(split.train, 3, 7);
  const auto params = fast_params(10);
  const auto trained = train_kernel_vertical(partition, svm::Kernel::rbf(0.3),
                                             params, nullptr);

  ServingConfig config;
  config.max_batch = 8;  // 10 batches of 8: every slot spans many batches
  config.max_linger = 1.0;
  config.cache_slots = 16;
  PredictionServer server(trained.model, params, config);

  // 8 distinct query points, each submitted 10 times: per learner the
  // first touch of each point misses, the other 9 hit. Unlimited budget,
  // so no evictions: hit rate is exactly 72/80 per learner.
  const std::size_t distinct = 8, repeats = 10;
  for (std::size_t i = 0; i < distinct * repeats; ++i) {
    const double now = static_cast<double>(i) * 0.001;
    server.advance(now);
    ASSERT_EQ(server.submit(0, split.test.x.row(i % distinct), now),
              AdmissionOutcome::kQueued);
  }
  server.drain(1.0);

  EXPECT_EQ(server.stats().served, distinct * repeats);
  EXPECT_EQ(server.stats().cache_bypass, 0u);  // pool never overflowed
  EXPECT_EQ(server.cache_misses(),
            static_cast<std::int64_t>(distinct * server.num_learners()));
  EXPECT_DOUBLE_EQ(server.cache_hit_rate(), 0.9);
  EXPECT_GE(server.cache_hit_rate(), 0.85);  // the pinned floor
}

TEST(PredictionServing, TokenBucketShedsUnderOverload) {
  const auto split = cancer_split(2);
  const auto partition = data::partition_vertically(split.train, 3, 7);
  const auto params = fast_params(10);
  const auto trained = train_linear_vertical(partition, params, nullptr);

  ServingConfig config;
  config.max_batch = 32;
  config.max_linger = 0.01;
  config.client_rate = 100.0;  // admitted capacity: 100 qps + burst 5
  config.client_burst = 5.0;
  PredictionServer server(trained.model, params, config);

  // One client offering 1000 qps of virtual time for 1 s: an order of
  // magnitude over capacity. The server must shed, not crash or queue
  // unboundedly — and the split is a pure function of the schedule.
  std::size_t queued = 0, shed = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const double now = static_cast<double>(i) * 0.001;
    server.advance(now);
    const auto outcome = server.submit(7, split.test.x.row(i % 10), now);
    (outcome == AdmissionOutcome::kQueued ? queued : shed)++;
    if (i < 5) {
      EXPECT_EQ(outcome, AdmissionOutcome::kQueued);  // burst
    }
  }
  server.drain(1.0);

  EXPECT_EQ(queued + shed, 1000u);
  EXPECT_EQ(server.stats().shed_rate, shed);
  EXPECT_GE(queued, 100u);  // at least the sustained refill
  EXPECT_LE(queued, 110u);  // burst + refill + rounding, nothing more
  EXPECT_EQ(server.stats().served, queued);  // everything admitted is served
  EXPECT_EQ(server.take_results().size(), queued);
}

TEST(PredictionServing, QueueDepthBoundSheds) {
  const auto split = cancer_split(2);
  const auto partition = data::partition_vertically(split.train, 3, 7);
  const auto params = fast_params(10);
  const auto trained = train_linear_vertical(partition, params, nullptr);

  ServingConfig config;
  config.max_batch = 64;
  config.max_linger = 10.0;
  config.max_queue_depth = 10;
  PredictionServer server(trained.model, params, config);

  // No advance() between submits: the drive loop has stalled. The bound
  // caps the pending queue and the overflow is shed with kShedQueue.
  std::size_t shed_queue = 0;
  for (std::size_t i = 0; i < 25; ++i) {
    const auto outcome =
        server.submit(0, split.test.x.row(i % 10), 0.001 * double(i));
    if (outcome == AdmissionOutcome::kShedQueue) ++shed_queue;
  }
  EXPECT_EQ(server.pending(), 10u);
  EXPECT_EQ(shed_queue, 15u);
  EXPECT_EQ(server.stats().shed_queue, 15u);
  server.drain(1.0);
  EXPECT_EQ(server.stats().served, 10u);
}

TEST(PredictionServing, FullAndLingerFlushReasons) {
  const auto split = cancer_split(2);
  const auto partition = data::partition_vertically(split.train, 3, 7);
  const auto params = fast_params(10);
  const auto trained = train_linear_vertical(partition, params, nullptr);

  ServingConfig config;
  config.max_batch = 4;
  config.max_linger = 0.005;
  PredictionServer server(trained.model, params, config);

  for (std::size_t i = 0; i < 4; ++i)
    server.submit(0, split.test.x.row(i), 0.0001 * double(i));
  server.advance(0.001);  // 4 pending = max_batch: full flush
  EXPECT_EQ(server.stats().full_flushes, 1u);

  server.submit(0, split.test.x.row(4), 0.002);
  server.submit(0, split.test.x.row(5), 0.003);
  server.advance(0.004);  // oldest waited 2 ms < linger: no flush yet
  EXPECT_EQ(server.stats().batches, 1u);
  server.advance(0.008);  // oldest waited 6 ms >= 5 ms: linger flush
  EXPECT_EQ(server.stats().linger_flushes, 1u);

  const auto results = server.take_results();
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].batch_occupancy, 4u);
  EXPECT_EQ(results[4].batch_occupancy, 2u);
  EXPECT_EQ(results[0].batch_id, 0u);  // batch id == secure-sum round
  EXPECT_EQ(results[4].batch_id, 1u);
}

TEST(PredictionServing, VirtualClockMustBeMonotone) {
  const auto split = cancer_split(2);
  const auto partition = data::partition_vertically(split.train, 3, 7);
  const auto params = fast_params(10);
  const auto trained = train_linear_vertical(partition, params, nullptr);

  PredictionServer server(trained.model, params, ServingConfig{});
  server.submit(0, split.test.x.row(0), 1.0);
  EXPECT_THROW(server.submit(0, split.test.x.row(1), 0.5), InvalidArgument);
  EXPECT_THROW(server.advance(0.5), InvalidArgument);
  server.advance(1.0);  // equal time is fine
}

}  // namespace
}  // namespace ppml::core
