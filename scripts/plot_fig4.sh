#!/usr/bin/env bash
# Regenerate the paper's Fig. 4 panels as PNGs from the bench binaries.
# Requires gnuplot. Usage:  scripts/plot_fig4.sh [build-dir] [out-dir]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-fig4}"
mkdir -p "$out_dir"

declare -A benches=(
  [a_linear_horizontal]="fig4_linear_horizontal"
  [b_kernel_horizontal]="fig4_kernel_horizontal"
  [c_linear_vertical]="fig4_linear_vertical"
  [d_kernel_vertical]="fig4_kernel_vertical"
)

for panel in "${!benches[@]}"; do
  bench="${benches[$panel]}"
  data="$out_dir/$panel.dat"
  "$build_dir/bench/$bench" | grep -v '^#' > "$data"
  for dataset in cancer higgs ocr; do
    grep "^$dataset " "$data" > "$out_dir/$panel.$dataset.dat" || true
  done

  gnuplot <<EOF
set terminal pngcairo size 640,480
set datafile missing "nan"
set logscale y
set xlabel "iterations"
set ylabel "||z(t+1)-z(t)||^2"
set key top right
set output "$out_dir/fig4${panel%%_*}_convergence.png"
plot "$out_dir/$panel.cancer.dat" using 2:3 with lines title "cancer", \
     "$out_dir/$panel.higgs.dat"  using 2:3 with lines title "higgs", \
     "$out_dir/$panel.ocr.dat"    using 2:3 with lines title "ocr"

unset logscale y
set yrange [0:1]
set ylabel "correct ratio"
set output "$out_dir/fig4${panel%%_*}_accuracy.png"
plot "$out_dir/$panel.cancer.dat" using 2:4 with lines title "cancer", \
     "$out_dir/$panel.higgs.dat"  using 2:4 with lines title "higgs", \
     "$out_dir/$panel.ocr.dat"    using 2:4 with lines title "ocr"
EOF
  echo "rendered $out_dir/fig4${panel%%_*}_*.png"
done
