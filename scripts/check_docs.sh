#!/usr/bin/env bash
# Documentation drift check: fail if any doc contains a dead relative
# markdown link, a backticked path to a file that does not exist, or a
# backticked symbol that appears nowhere in the code — and, in the other
# direction, if the runtime emits a counter/gauge/histogram/series name
# that docs/observability.md does not list. Run by verify.sh; cheap
# enough to run on every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PYEOF'
import glob as globmod
import os
import re
import sys

DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md")
)

# Code corpus for symbol lookups.
CORPUS_DIRS = ["src", "tests", "bench", "examples", "scripts"]
corpus = []
for d in CORPUS_DIRS:
    for root, _, files in os.walk(d):
        for f in files:
            if f.endswith((".h", ".cpp", ".cmake", ".txt", ".sh")):
                with open(os.path.join(root, f), errors="replace") as fh:
                    corpus.append(fh.read())
with open("CMakeLists.txt", errors="replace") as fh:
    corpus.append(fh.read())
corpus = "\n".join(corpus)

# Runtime outputs and globs are not repo files; only these extensions are
# expected to exist in the tree.
CHECKED_EXTS = (".h", ".cpp", ".md", ".sh", ".cmake")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TICK_RE = re.compile(r"`([^`\n]+)`")
PATHISH_RE = re.compile(r"^[A-Za-z0-9_.{},/\-]+$")
QUALIFIED_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_][A-Za-z0-9_]*)+(\(\))?$")
TEST_RE = re.compile(r"^[A-Z][A-Za-z0-9_]*\.[A-Z][A-Za-z0-9_]*$")
CAMEL_RE = re.compile(r"^[A-Z][a-z][A-Za-z0-9]{4,}$")


def strip_fences(text):
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def expand_braces(token):
    """bench/fig4_{linear,kernel}_{horizontal,vertical} -> 4 tokens."""
    m = re.search(r"\{([^{}]*,[^{}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end():]
    return [
        e
        for alt in m.group(1).split(",")
        for e in expand_braces(head + alt + tail)
    ]


# Directories a path-ish token may plausibly start in. Tokens whose first
# segment is none of these and that carry no checked extension are treated
# as math/notation (e.g. `rho/M`), not file references.
KNOWN_ROOTS = {"src", "docs", "tests", "bench", "examples", "scripts", "build"}
KNOWN_ROOTS |= {d for d in os.listdir("src") if os.path.isdir(os.path.join("src", d))}


def path_exists(token):
    for e in expand_braces(token):
        _, ext = os.path.splitext(e)
        if ext and ext not in CHECKED_EXTS:
            return True  # runtime output (json/csv/png/...) — not checked
        if not ext and "/" in e and e.split("/", 1)[0] not in KNOWN_ROOTS:
            return True  # notation, not a path
        cands = [e, os.path.join("src", e), os.path.join("docs", e)]
        cands += globmod.glob(os.path.join("src", "*", e))
        if not ext:
            cands += [c + x for c in list(cands) for x in (".h", ".cpp")]
        if not any(os.path.exists(c) for c in cands):
            return False
    return True


def symbol_exists(name):
    return re.search(r"\b%s\b" % re.escape(name), corpus) is not None


errors = []
for doc in DOCS:
    if not os.path.exists(doc):
        continue
    with open(doc) as fh:
        text = strip_fences(fh.read())
    docdir = os.path.dirname(doc)

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not os.path.exists(os.path.normpath(os.path.join(docdir, target))):
            errors.append(f"{doc}: dead link -> {m.group(1)}")

    for m in TICK_RE.finditer(text):
        token = m.group(0)[1:-1].strip().rstrip(".,;:")
        if not token or " " in token or "*" in token:
            continue
        qm = QUALIFIED_RE.match(token)
        if qm:
            leaf = token.rstrip("()").split("::")[-1]
            if not symbol_exists(leaf):
                errors.append(f"{doc}: unknown symbol -> {token}")
            continue
        if TEST_RE.match(token):
            suite, name = token.split(".", 1)
            if not (symbol_exists(suite) and symbol_exists(name)):
                errors.append(f"{doc}: unknown test -> {token}")
            continue
        if "/" in token and PATHISH_RE.match(token):
            if not path_exists(token):
                errors.append(f"{doc}: missing file -> {token}")
            continue
        _, ext = os.path.splitext(token)
        if ext in CHECKED_EXTS and PATHISH_RE.match(token):
            if not path_exists(token):
                errors.append(f"{doc}: missing file -> {token}")
            continue
        if CAMEL_RE.match(token) and not symbol_exists(token):
            errors.append(f"{doc}: unknown symbol -> {token}")

# Reverse drift: every literal dotted metric name the runtime emits must
# be documented in docs/observability.md. Doc entries may use `{a,b}`
# brace alternation and `<placeholder>` segments; bare `x.*` tokens are
# prose shorthand, not documentation of a concrete name. Only src/ is
# scanned — tests and benches mint synthetic names on purpose.
EMIT_RE = re.compile(
    r"\b(?:count_for|count_if_enabled|count|gauge|observe|append|add|"
    r"increment|party_counter|declare_histogram)\s*\(\s*\""
    r"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)\"")
emitted = set()
for root, _, files in os.walk("src"):
    for f in files:
        if f.endswith((".h", ".cpp")):
            with open(os.path.join(root, f), errors="replace") as fh:
                emitted |= set(EMIT_RE.findall(fh.read()))

with open(os.path.join("docs", "observability.md")) as fh:
    obs_doc = fh.read()
documented, doc_patterns = set(), []
for m in TICK_RE.finditer(obs_doc):
    token = m.group(1).strip().rstrip(".,;:")
    if "*" in token or "." not in token:
        continue
    if not re.fullmatch(r"[a-z0-9_{},.<>]+", token):
        continue
    for t in expand_braces(token):
        if "<" in t:
            pat = re.sub(r"<[^>]+>", "\x00", t)
            doc_patterns.append(re.compile(
                re.escape(pat).replace("\x00", r"[a-z0-9_]+")))
        else:
            documented.add(t)
for name in sorted(emitted):
    if name in documented:
        continue
    if any(p.fullmatch(name) for p in doc_patterns):
        continue
    errors.append(f"docs/observability.md: undocumented metric -> {name}")

if errors:
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
    sys.exit(1)
print(f"check_docs: OK ({len(DOCS)} docs)")
PYEOF
