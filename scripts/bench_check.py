#!/usr/bin/env python3
"""Gate bench reports against committed baselines.

Usage:
    scripts/bench_check.py CURRENT.json BASELINE.json

Compares a freshly generated bench report (BENCH_fig4.json,
BENCH_scalability.json, BENCH_qp.json) against the committed baseline in
bench/baselines/ and exits non-zero on regression. Two classes of values
get two very different treatments:

* Deterministic numerics — counters (net.bytes, crypto.masks_generated,
  linalg.gemm.flops), ADMM residual series, accuracies, iteration counts —
  must match the baseline EXACTLY. The repo pins bit-identical training
  runs in its tests, so any drift here is a real behaviour change, not
  noise.

* Time-like values — keys ending in `_s`/`_seconds`, containing `wall`,
  quantile keys like `p50`/`p95`/`p99`, throughput (`qps`, a pure
  function of wall time), plus everything inside a
  `histograms` subtree (histogram sums accumulate in thread order, so
  their low bits are not reproducible) — only fail when they drift by
  more than TIME_RATIO x in either direction AND the absolute difference
  exceeds TIME_ABS_SLACK seconds. Container timing jitter on
  micro-second-scale phases is huge; this gates catastrophic slowdowns
  without flaking on noise.

* Overhead percentages — keys ending in `_pct` (the privacy-ledger cell's
  `ledger_overhead_pct` in BENCH_crypto.json) are ratios of two timings,
  so baseline equality is meaningless; they gate on an absolute ceiling
  (PCT_CEILING) instead. The generating bench applies its own, tighter
  budget first — this is the backstop.

The report structure itself (keys, array lengths, value kinds) must match
exactly: a missing phase or counter means instrumentation silently broke.

Refresh a baseline deliberately with:
    cp build/BENCH_fig4.json bench/baselines/BENCH_fig4.json
"""

import json
import re
import sys

TIME_RATIO = 4.0  # fail when current/baseline (or inverse) exceeds this...
TIME_ABS_SLACK = 0.25  # ...and the absolute drift is more than this (s)
RSS_RATIO = 8.0  # peak RSS gates only on order-of-magnitude blowups
PCT_CEILING = 3.5  # *_pct overhead keys fail only above this ceiling

TIME_KEY = re.compile(r"(_s|seconds)$|wall|^p\d+$|^qps$|^speedup$")

# Informational keys: environment-dependent measurements that legitimately
# differ between the machine that committed the baseline and the machine
# running the check. Their presence/absence never fails the key-shape
# check; `peak_rss_bytes` gates only with the generous RSS_RATIO slack and
# an `isa` mismatch just warns (a baseline recorded on an AVX2 box must not
# fail on a scalar-only one, and vice versa).
INFO_KEYS = {"peak_rss_bytes", "isa"}

NUMERIC = (int, float)


def is_time_like(key, in_histogram):
    return in_histogram or TIME_KEY.search(key) is not None


def check_time(path, current, baseline, problems):
    drift = abs(current - baseline)
    if drift <= TIME_ABS_SLACK:
        return
    lo, hi = sorted([abs(current), abs(baseline)])
    if lo == 0 or hi / lo > TIME_RATIO:
        problems.append(
            f"{path}: timing drifted {baseline!r} -> {current!r} "
            f"(>{TIME_RATIO}x and >{TIME_ABS_SLACK}s)")


def check_pct(path, current, problems):
    if abs(current) > PCT_CEILING:
        problems.append(
            f"{path}: overhead {current!r}% exceeds the {PCT_CEILING}% "
            f"ceiling")


def check_rss(path, current, baseline, problems):
    lo, hi = sorted([abs(current), abs(baseline)])
    if lo == 0 or hi / lo > RSS_RATIO:
        problems.append(
            f"{path}: peak RSS drifted {baseline!r} -> {current!r} "
            f"(>{RSS_RATIO}x)")


def compare(path, current, baseline, problems, in_histogram=False):
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            problems.append(f"{path}: expected object, got {type(current).__name__}")
            return
        missing = sorted(baseline.keys() - current.keys() - INFO_KEYS)
        extra = sorted(current.keys() - baseline.keys() - INFO_KEYS)
        if missing:
            problems.append(f"{path}: missing keys {missing}")
        if extra:
            problems.append(f"{path}: unexpected keys {extra}")
        for key in sorted(baseline.keys() & current.keys()):
            compare(f"{path}.{key}", current[key], baseline[key], problems,
                    in_histogram or key == "histograms")
    elif isinstance(baseline, list):
        if not isinstance(current, list):
            problems.append(f"{path}: expected array, got {type(current).__name__}")
            return
        if len(current) != len(baseline):
            problems.append(
                f"{path}: length {len(baseline)} -> {len(current)}")
            return
        for i, (c, b) in enumerate(zip(current, baseline)):
            compare(f"{path}[{i}]", c, b, problems, in_histogram)
    elif isinstance(baseline, bool) or not isinstance(baseline, NUMERIC):
        if current != baseline:
            key = path.rsplit(".", 1)[-1].split("[")[0]
            if key in INFO_KEYS:
                print(f"bench_check: note: {path}: {baseline!r} -> "
                      f"{current!r} (informational)")
            else:
                problems.append(f"{path}: {baseline!r} -> {current!r}")
    else:  # numeric leaf: int/float are interchangeable kinds (0 vs 0.0)
        if isinstance(current, bool) or not isinstance(current, NUMERIC):
            problems.append(f"{path}: expected number, got {current!r}")
            return
        key = path.rsplit(".", 1)[-1].split("[")[0]
        if key == "peak_rss_bytes":
            check_rss(path, current, baseline, problems)
        elif key.endswith("_pct"):
            check_pct(path, current, problems)
        elif is_time_like(key, in_histogram):
            check_time(path, current, baseline, problems)
        elif current != baseline:
            problems.append(f"{path}: {baseline!r} -> {current!r}")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        current = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)
    problems = []
    compare("$", current, baseline, problems)
    if problems:
        print(f"bench_check: {argv[1]} regressed vs {argv[2]}:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"bench_check: {argv[1]} matches {argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
