#!/usr/bin/env bash
# Tier-1 verification: configure + build + full test suite, then the
# fault-tolerance-critical suites again under AddressSanitizer +
# UndefinedBehaviorSanitizer (the chaos paths exercise threads, retries and
# ring arithmetic — exactly where ASan/UBSan earn their keep).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

cmake -B build-asan -S . -DPPML_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$jobs" --target mapreduce_test chaos_test \
  dropout_recovery_test
./build-asan/tests/mapreduce_test
./build-asan/tests/chaos_test
./build-asan/tests/dropout_recovery_test

echo "verify: OK"
