#!/usr/bin/env bash
# Tier-1 verification: configure + build, the fast `tier1`-labelled unit
# suites first (fail fast — a broken codec or consensus engine should stop
# the run before the integration and sanitizer stages spin up), then the
# full test suite, then the fault-tolerance-, observability- and
# cache-critical suites again under AddressSanitizer +
# UndefinedBehaviorSanitizer (the chaos, tracing, kernel-cache,
# threaded-gemm and consensus-engine paths exercise threads, retries, spans
# into LRU-managed storage and ring arithmetic — exactly where ASan/UBSan
# earn their keep), a bench smoke run that checks BENCH_qp.json is
# well-formed (no performance gating), a bench regression gate that diffs
# BENCH_fig4.json / BENCH_scalability.json / BENCH_qp.json /
# BENCH_async.json against bench/baselines/ via scripts/bench_check.py,
# then the doc link check.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs" -L tier1
ctest --test-dir build --output-on-failure -j"$jobs" -LE tier1

cmake -B build-asan -S . -DPPML_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$jobs" --target mapreduce_test chaos_test \
  dropout_recovery_test obs_test qp_test linalg_test consensus_engine_test \
  async_consensus_test grouped_ring_test
./build-asan/tests/mapreduce_test
./build-asan/tests/chaos_test
./build-asan/tests/dropout_recovery_test
./build-asan/tests/obs_test
./build-asan/tests/qp_test
./build-asan/tests/linalg_test
./build-asan/tests/consensus_engine_test
./build-asan/tests/async_consensus_test
./build-asan/tests/grouped_ring_test

# Bench smoke: skip the timed google-benchmark cases (empty filter), run
# only the cache-budget sweep, and require a parseable report with the
# expected shape. Timings are NOT gated — this guards the harness, not
# the numbers.
(cd build && ./bench/qp_solvers --benchmark_filter='^$' >/dev/null)
python3 - <<'PYEOF'
import json
report = json.load(open("build/BENCH_qp.json"))
assert report["bench"] == "qp_solvers", report
for size in report["cache_sweep"]:
    modes = {m["mode"] for m in size["modes"]}
    assert {"dense", "cache_full", "cache_25pct", "cache_min"} <= modes, modes
    for m in size["modes"]:
        if "max_abs_diff_vs_dense" in m:
            assert m["max_abs_diff_vs_dense"] == 0.0, m
print("bench smoke: BENCH_qp.json OK")
PYEOF

# Bench regression gate: regenerate the deterministic reports and diff
# them against the committed baselines (BENCH_qp.json was just written by
# the smoke run above). Deterministic numerics
# (counters, residual series, accuracies) must match exactly; timings only
# fail on catastrophic drift — policy in scripts/bench_check.py.
(cd build && ./bench/fig4_linear_horizontal >/dev/null)
(cd build && ./bench/scalability >/dev/null)
# ablation_straggler also self-checks the ISSUE acceptance bound: async
# objective within 1e-3 of sync in at most half the sync wall-clock.
(cd build && ./bench/ablation_straggler >/dev/null)
python3 scripts/bench_check.py build/BENCH_fig4.json \
  bench/baselines/BENCH_fig4.json
python3 scripts/bench_check.py build/BENCH_scalability.json \
  bench/baselines/BENCH_scalability.json
python3 scripts/bench_check.py build/BENCH_qp.json \
  bench/baselines/BENCH_qp.json
python3 scripts/bench_check.py build/BENCH_async.json \
  bench/baselines/BENCH_async.json

scripts/check_docs.sh

echo "verify: OK"
