#!/usr/bin/env bash
# Tier-1 verification: configure + build + full test suite, then the
# fault-tolerance- and observability-critical suites again under
# AddressSanitizer + UndefinedBehaviorSanitizer (the chaos and tracing
# paths exercise threads, retries and ring arithmetic — exactly where
# ASan/UBSan earn their keep), then the documentation link check.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

cmake -B build-asan -S . -DPPML_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$jobs" --target mapreduce_test chaos_test \
  dropout_recovery_test obs_test
./build-asan/tests/mapreduce_test
./build-asan/tests/chaos_test
./build-asan/tests/dropout_recovery_test
./build-asan/tests/obs_test

scripts/check_docs.sh

echo "verify: OK"
