#!/usr/bin/env bash
# Tier-1 verification: configure + build, the fast `tier1`-labelled unit
# suites first (fail fast — a broken codec or consensus engine should stop
# the run before the integration and sanitizer stages spin up), then the
# full test suite, then the fault-tolerance-, observability- and
# cache-critical suites again under AddressSanitizer +
# UndefinedBehaviorSanitizer (the chaos, tracing, kernel-cache,
# threaded-gemm and consensus-engine paths exercise threads, retries, spans
# into LRU-managed storage and ring arithmetic — exactly where ASan/UBSan
# earn their keep), bench smoke runs that check BENCH_qp.json and a
# reduced-load BENCH_serving.json are well-formed (no performance gating),
# a bench regression gate that diffs BENCH_fig4.json /
# BENCH_scalability.json / BENCH_qp.json / BENCH_async.json /
# BENCH_serving.json / BENCH_crypto.json against bench/baselines/ via
# scripts/bench_check.py, then the doc link check.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs" -L tier1
ctest --test-dir build --output-on-failure -j"$jobs" -LE tier1

cmake -B build-asan -S . -DPPML_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$jobs" --target mapreduce_test chaos_test \
  dropout_recovery_test obs_test qp_test linalg_test microkernel_test \
  consensus_engine_test async_consensus_test grouped_ring_test serving_test \
  privacy_ledger_test
# mapreduce_test covers the out-of-core blockstore: spill/mmap/LRU paths
# hand out spans into unlinked mapped files — ASan watches the lifetimes.
./build-asan/tests/mapreduce_test
./build-asan/tests/chaos_test
./build-asan/tests/dropout_recovery_test
./build-asan/tests/obs_test
./build-asan/tests/qp_test
./build-asan/tests/linalg_test
# SIMD microkernels under ASan/UBSan, once dispatched and once pinned to
# the scalar table: tail-lane loads at awkward shapes and the cpuid/env
# dispatcher are exactly where out-of-bounds reads would hide.
./build-asan/tests/microkernel_test
PPML_FORCE_ISA=scalar ./build-asan/tests/microkernel_test
./build-asan/tests/consensus_engine_test
./build-asan/tests/async_consensus_test
./build-asan/tests/grouped_ring_test
# serving_test drives spans and flows into deque/LRU-managed storage while
# batches recycle KernelCache rows — prime ASan territory.
./build-asan/tests/serving_test
# privacy_ledger_test injects pad replay and Shamir over-exposure: the
# ledger's lock-free slot table and the check-failure flight dump run under
# ASan/UBSan exactly where a racy or out-of-bounds probe would hide.
./build-asan/tests/privacy_ledger_test

# Bench smoke: skip the timed google-benchmark cases (empty filter), run
# only the cache-budget sweep, and require a parseable report with the
# expected shape. Timings are NOT gated — this guards the harness, not
# the numbers.
(cd build && ./bench/qp_solvers --benchmark_filter='^$' >/dev/null)
python3 - <<'PYEOF'
import json
report = json.load(open("build/BENCH_qp.json"))
assert report["bench"] == "qp_solvers", report
for size in report["cache_sweep"]:
    modes = {m["mode"] for m in size["modes"]}
    assert {"dense", "cache_full", "cache_25pct", "cache_min"} <= modes, modes
    for m in size["modes"]:
        if "max_abs_diff_vs_dense" in m:
            assert m["max_abs_diff_vs_dense"] == 0.0, m
print("bench smoke: BENCH_qp.json OK")
PYEOF

# Serving smoke: reduced query count, shape + invariants only (the real
# load level runs in the regression gate below and overwrites this file).
(cd build && ./bench/serving --queries 2000 >/dev/null)
python3 - <<'PYEOF'
import json
report = json.load(open("build/BENCH_serving.json"))
assert report["bench"] == "serving", report
assert len(report["linear_batch_sweep"]) == 3
for row in report["linear_batch_sweep"]:
    assert row["served"] == report["queries"], row
    assert row["p99_latency_s"] > 0.0, row
cache = report["kernel_cache"]
assert cache["cache_hit_rate"] > 0.5, cache
overload = report["overload"]
assert overload["shed_rate"] > 0, overload
assert overload["served"] + overload["shed_rate"] + overload["shed_queue"] \
    == overload["submitted"], overload
assert report["counters_instrumented"]["serve.admission.queued"] > 0
print("bench smoke: BENCH_serving.json OK")
PYEOF

# Bench regression gate: regenerate the deterministic reports and diff
# them against the committed baselines (BENCH_qp.json was just written by
# the smoke run above). Deterministic numerics
# (counters, residual series, accuracies) must match exactly; timings only
# fail on catastrophic drift — policy in scripts/bench_check.py.
(cd build && ./bench/fig4_linear_horizontal >/dev/null)
(cd build && ./bench/scalability >/dev/null)
# ablation_straggler also self-checks the ISSUE acceptance bound: async
# objective within 1e-3 of sync in at most half the sync wall-clock.
(cd build && ./bench/ablation_straggler >/dev/null)
# serving self-checks batched-vs-per-query bit identity and admission
# accounting; its virtual-clock numerics (batching, sheds, cache traffic)
# are gated exactly, only wall/qps/latency keys get timing slack.
(cd build && ./bench/serving >/dev/null)
# crypto_overhead's ledger cell (gbench cases skipped via empty filter)
# self-enforces the <3% ledger-on budget and bit-identical sums, then the
# bench_check backstop gates the written report.
(cd build && ./bench/crypto_overhead --benchmark_filter='^$' >/dev/null)
python3 scripts/bench_check.py build/BENCH_fig4.json \
  bench/baselines/BENCH_fig4.json
python3 scripts/bench_check.py build/BENCH_scalability.json \
  bench/baselines/BENCH_scalability.json
python3 scripts/bench_check.py build/BENCH_qp.json \
  bench/baselines/BENCH_qp.json
python3 scripts/bench_check.py build/BENCH_async.json \
  bench/baselines/BENCH_async.json
python3 scripts/bench_check.py build/BENCH_serving.json \
  bench/baselines/BENCH_serving.json
python3 scripts/bench_check.py build/BENCH_crypto.json \
  bench/baselines/BENCH_crypto.json

scripts/check_docs.sh

echo "verify: OK"
