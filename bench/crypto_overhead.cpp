// Ablation X1: cost of privacy at the Reducer (google-benchmark).
//
// The paper's core efficiency argument is that a few symmetric-crypto
// operations at Reduce() are cheap, whereas SMC-style public-key
// approaches pay per-value asymmetric costs. This bench quantifies that
// gap on the exact summation task the Reducer performs:
//   - plaintext sum (no privacy, lower bound)
//   - the paper's masking protocol (mask generation + ring sum + decode)
//   - Paillier encrypt+add+decrypt (toy 48-bit modulus — real deployments
//     use 2048-bit+, so the measured gap is a LOWER bound on the real one)
//
// Plus the privacy-ledger guardrail cell (runs after the gbench suite, or
// alone with --benchmark_filter='^$'): an M=16 seeded consensus-style run
// timed ledger-off vs ledger-on, written to BENCH_crypto.json and gated by
// scripts/bench_check.py — the ledger's per-pad accounting must stay under
// a few percent of the masking work it audits, with bit-identical sums.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "crypto/paillier.h"
#include "crypto/secure_sum_session.h"
#include "obs/obs.h"
#include "obs/report.h"

using namespace ppml;

namespace {

constexpr std::size_t kParties = 4;

std::vector<std::vector<double>> party_values(std::size_t dim) {
  std::vector<std::vector<double>> values(kParties,
                                          std::vector<double>(dim));
  crypto::Xoshiro256 rng(7);
  for (auto& v : values)
    for (double& x : v) x = rng.next_double() * 10.0 - 5.0;
  return values;
}

void BM_PlaintextSum(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  for (auto _ : state) {
    std::vector<double> sum(dim, 0.0);
    for (const auto& v : values)
      for (std::size_t j = 0; j < dim; ++j) sum[j] += v[j];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_PlaintextSum)->Arg(16)->Arg(256)->Arg(4096);

void BM_SecureSumSeededMasks(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  const crypto::FixedPointCodec codec(20, kParties);
  const auto seeds = crypto::agree_pairwise_seeds(kParties, 5);
  std::vector<crypto::SecureSumParty> parties;
  for (std::size_t i = 0; i < kParties; ++i)
    parties.emplace_back(i, kParties, codec, seeds[i]);
  std::size_t round = 0;
  for (auto _ : state) {
    crypto::SecureSumAggregator aggregator(kParties, codec);
    for (std::size_t i = 0; i < kParties; ++i)
      aggregator.add(parties[i].masked_contribution(values[i], round));
    benchmark::DoNotOptimize(aggregator.average());
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_SecureSumSeededMasks)->Arg(16)->Arg(256)->Arg(4096);

void BM_SecureSumExchangedMasks(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  const crypto::FixedPointCodec codec(20, kParties);
  std::size_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::secure_average(
        values, codec, 9, crypto::MaskVariant::kExchangedMasks, round));
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_SecureSumExchangedMasks)->Arg(16)->Arg(256)->Arg(4096);

void BM_PaillierSum(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  crypto::Xoshiro256 rng(11);
  const auto keys = crypto::paillier_keygen(24, rng);
  const crypto::FixedPointCodec codec(10, kParties);
  for (auto _ : state) {
    std::vector<std::uint64_t> decoded(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      crypto::u128 acc = crypto::paillier_encrypt(keys.public_key, 0, rng);
      for (std::size_t i = 0; i < kParties; ++i) {
        // Encode each real into the plaintext space (scaled, offset).
        const std::uint64_t m = crypto::paillier_encode_signed(
            keys.public_key,
            static_cast<std::int64_t>(values[i][j] * 1024.0));
        acc = crypto::paillier_add(
            keys.public_key, acc,
            crypto::paillier_encrypt(keys.public_key, m, rng));
      }
      decoded[j] =
          crypto::paillier_decrypt(keys.public_key, keys.private_key, acc);
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_PaillierSum)->Arg(16)->Arg(256);

void BM_DhKeyAgreement(benchmark::State& state) {
  const std::size_t parties = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::agree_pairwise_seeds(parties, seed++));
  }
}
BENCHMARK(BM_DhKeyAgreement)->Arg(4)->Arg(16);

// ------------------------------------------------- ledger guardrail cell

constexpr std::size_t kLedgerParties = 16;
constexpr std::size_t kLedgerDim = 2048;
constexpr std::size_t kLedgerRounds = 12;
constexpr std::size_t kLedgerReps = 9;
constexpr double kLedgerBudgetPct = 3.0;

/// One consensus-style run: every party contributes a batched masked vector
/// per round, the reducer averages. Returns (wall seconds, final average).
std::pair<double, std::vector<double>> consensus_run(
    crypto::SecureSumSession& session,
    const std::vector<std::vector<double>>& values) {
  const std::vector<std::size_t> everyone = [] {
    std::vector<std::size_t> ids(kLedgerParties);
    for (std::size_t i = 0; i < kLedgerParties; ++i) ids[i] = i;
    return ids;
  }();
  std::vector<std::vector<std::uint64_t>> contributions(kLedgerParties);
  std::vector<double> average;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kLedgerRounds; ++round) {
    for (std::size_t i = 0; i < kLedgerParties; ++i) {
      const std::vector<crypto::SecureSumSession::Tensor> tensors{
          crypto::SecureSumSession::Tensor(values[i])};
      contributions[i] = session.contribute(i, tensors, round, everyone);
    }
    average = session.reduce_average(round, everyone, everyone, contributions);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {wall, std::move(average)};
}

// Min-of-N: scheduler and frequency jitter only ever ADD time, so the
// minimum is the stable estimator of each arm's systematic cost — a median
// at this scale (tens of ms per rep) still carries several percent of
// container noise, more than the overhead being measured.
double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

int run_ledger_overhead_cell() {
  std::vector<std::vector<double>> values(kLedgerParties,
                                          std::vector<double>(kLedgerDim));
  crypto::Xoshiro256 rng(13);
  for (auto& v : values)
    for (double& x : v) x = rng.next_double() * 10.0 - 5.0;

  crypto::SecureSumConfig config;
  config.num_parties = kLedgerParties;
  config.protocol_seed = 0x1ED6E5;

  // Interleave off/on reps so thermal / frequency drift hits both arms.
  std::vector<double> off_walls, on_walls;
  std::vector<double> off_sum, on_sum;
  std::uint64_t pads_recorded = 0, pads_distinct = 0;
  for (std::size_t rep = 0; rep < kLedgerReps; ++rep) {
    {
      crypto::SecureSumSession session(config);
      auto [wall, average] = consensus_run(session, values);
      off_walls.push_back(wall);
      off_sum = std::move(average);
    }
    {
      obs::PrivacyLedger ledger;
      obs::Session obs_session(nullptr, nullptr, nullptr, &ledger);
      crypto::SecureSumSession session(config);
      auto [wall, average] = consensus_run(session, values);
      on_walls.push_back(wall);
      on_sum = std::move(average);
      const auto snap = ledger.snapshot();
      pads_recorded = snap.pads_recorded;
      pads_distinct = snap.pads_distinct;
      if (!snap.violations.empty()) {
        std::fprintf(stderr, "ledger cell: unexpected violation recorded\n");
        return 1;
      }
    }
  }

  const bool bit_identical = off_sum == on_sum;
  const double off_wall = best(off_walls);
  const double on_wall = best(on_walls);
  const double overhead_pct =
      off_wall > 0.0 ? (on_wall / off_wall - 1.0) * 100.0 : 0.0;

  std::printf("\n# privacy ledger cell: M=%zu dim=%zu rounds=%zu\n",
              kLedgerParties, kLedgerDim, kLedgerRounds);
  std::printf("# ledger off %.4fs, on %.4fs -> overhead %.2f%% "
              "(budget %.1f%%), bit_identical=%d\n",
              off_wall, on_wall, overhead_pct, kLedgerBudgetPct,
              bit_identical ? 1 : 0);

  obs::JsonValue cell = obs::JsonValue::object();
  cell.set("parties", kLedgerParties);
  cell.set("dim", kLedgerDim);
  cell.set("rounds", kLedgerRounds);
  cell.set("ledger_off_wall_s", off_wall);
  cell.set("ledger_on_wall_s", on_wall);
  cell.set("ledger_overhead_pct", overhead_pct);
  cell.set("bit_identical", bit_identical);
  cell.set("pads_recorded", pads_recorded);
  cell.set("pads_distinct", pads_distinct);
  obs::JsonValue report = obs::JsonValue::object();
  report.set("ledger_overhead", std::move(cell));
  obs::JsonValue root = obs::JsonValue::object();
  root.set("crypto_overhead", std::move(report));
  obs::write_json_file("BENCH_crypto.json", root);
  std::printf("# report written to BENCH_crypto.json\n");

  if (!bit_identical) {
    std::fprintf(stderr,
                 "ledger cell: sums differ ledger-on vs ledger-off\n");
    return 1;
  }
  if (overhead_pct > kLedgerBudgetPct) {
    std::fprintf(stderr, "ledger cell: overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kLedgerBudgetPct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return run_ledger_overhead_cell();
}
