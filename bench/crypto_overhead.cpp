// Ablation X1: cost of privacy at the Reducer (google-benchmark).
//
// The paper's core efficiency argument is that a few symmetric-crypto
// operations at Reduce() are cheap, whereas SMC-style public-key
// approaches pay per-value asymmetric costs. This bench quantifies that
// gap on the exact summation task the Reducer performs:
//   - plaintext sum (no privacy, lower bound)
//   - the paper's masking protocol (mask generation + ring sum + decode)
//   - Paillier encrypt+add+decrypt (toy 48-bit modulus — real deployments
//     use 2048-bit+, so the measured gap is a LOWER bound on the real one)
#include <benchmark/benchmark.h>

#include "crypto/paillier.h"
#include "crypto/secure_sum.h"

using namespace ppml;

namespace {

constexpr std::size_t kParties = 4;

std::vector<std::vector<double>> party_values(std::size_t dim) {
  std::vector<std::vector<double>> values(kParties,
                                          std::vector<double>(dim));
  crypto::Xoshiro256 rng(7);
  for (auto& v : values)
    for (double& x : v) x = rng.next_double() * 10.0 - 5.0;
  return values;
}

void BM_PlaintextSum(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  for (auto _ : state) {
    std::vector<double> sum(dim, 0.0);
    for (const auto& v : values)
      for (std::size_t j = 0; j < dim; ++j) sum[j] += v[j];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_PlaintextSum)->Arg(16)->Arg(256)->Arg(4096);

void BM_SecureSumSeededMasks(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  const crypto::FixedPointCodec codec(20, kParties);
  const auto seeds = crypto::agree_pairwise_seeds(kParties, 5);
  std::vector<crypto::SecureSumParty> parties;
  for (std::size_t i = 0; i < kParties; ++i)
    parties.emplace_back(i, kParties, codec, seeds[i]);
  std::size_t round = 0;
  for (auto _ : state) {
    crypto::SecureSumAggregator aggregator(kParties, codec);
    for (std::size_t i = 0; i < kParties; ++i)
      aggregator.add(parties[i].masked_contribution(values[i], round));
    benchmark::DoNotOptimize(aggregator.average());
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_SecureSumSeededMasks)->Arg(16)->Arg(256)->Arg(4096);

void BM_SecureSumExchangedMasks(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  const crypto::FixedPointCodec codec(20, kParties);
  std::size_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::secure_average(
        values, codec, 9, crypto::MaskVariant::kExchangedMasks, round));
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_SecureSumExchangedMasks)->Arg(16)->Arg(256)->Arg(4096);

void BM_PaillierSum(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const auto values = party_values(dim);
  crypto::Xoshiro256 rng(11);
  const auto keys = crypto::paillier_keygen(24, rng);
  const crypto::FixedPointCodec codec(10, kParties);
  for (auto _ : state) {
    std::vector<std::uint64_t> decoded(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      crypto::u128 acc = crypto::paillier_encrypt(keys.public_key, 0, rng);
      for (std::size_t i = 0; i < kParties; ++i) {
        // Encode each real into the plaintext space (scaled, offset).
        const std::uint64_t m = crypto::paillier_encode_signed(
            keys.public_key,
            static_cast<std::int64_t>(values[i][j] * 1024.0));
        acc = crypto::paillier_add(
            keys.public_key, acc,
            crypto::paillier_encrypt(keys.public_key, m, rng));
      }
      decoded[j] =
          crypto::paillier_decrypt(keys.public_key, keys.private_key, acc);
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * kParties));
}
BENCHMARK(BM_PaillierSum)->Arg(16)->Arg(256);

void BM_DhKeyAgreement(benchmark::State& state) {
  const std::size_t parties = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::agree_pairwise_seeds(parties, seed++));
  }
}
BENCHMARK(BM_DhKeyAgreement)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
