// Shared setup for the evaluation harness (paper §VI).
//
// Every fig4_* binary reproduces one panel pair of the paper's Fig. 4 on
// the three datasets (cancer / higgs / ocr substitutes — DESIGN.md §3),
// with the paper's settings: M = 4 learners, C = 50, rho = 100, 50/50
// train/test split, random row/feature assignment, 100 iterations.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/params.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "svm/metrics.h"
#include "svm/trainer.h"

namespace ppml::bench {

struct BenchDataset {
  std::string name;
  data::SplitDataset split;  ///< standardized, 50/50
};

/// Build one of the three paper datasets, 50/50 split, standardized.
/// `cap` truncates the generated sample count (0 = paper-size).
inline BenchDataset make_bench_dataset(const std::string& which,
                                       std::size_t cap = 0,
                                       std::uint64_t seed = 1) {
  data::Dataset raw;
  if (which == "cancer") {
    raw = data::make_cancer_like(seed);
    if (cap != 0 && cap < raw.size()) {
      std::vector<std::size_t> rows(cap);
      for (std::size_t i = 0; i < cap; ++i) rows[i] = i;
      raw = raw.subset(rows);
    }
  } else if (which == "higgs") {
    raw = data::make_higgs_like(seed, cap == 0 ? 11000 : cap);
  } else if (which == "ocr") {
    raw = data::make_ocr_like(seed, cap == 0 ? 5620 : cap);
  } else {
    throw InvalidArgument("make_bench_dataset: unknown dataset " + which);
  }
  BenchDataset out;
  out.name = which;
  out.split = data::train_test_split(raw, 0.5, 42);
  data::StandardScaler scaler;
  scaler.fit_transform(out.split);
  return out;
}

/// Paper defaults (§VI): C = 50, rho = 100, 100 iterations.
inline core::AdmmParams paper_params(std::size_t iterations = 100) {
  core::AdmmParams params;
  params.c = 50.0;
  params.rho = 100.0;
  params.max_iterations = iterations;
  return params;
}

/// Print one trace in the Fig. 4 format: iteration, ||dz||^2 (panels a-d),
/// correct ratio (panels e-h).
inline void print_trace(const std::string& dataset,
                        const core::ConvergenceTrace& trace) {
  for (const auto& record : trace.records) {
    std::printf("%s %4zu %.6e %.4f\n", dataset.c_str(), record.iteration + 1,
                record.z_delta_sq, record.test_accuracy);
  }
}

inline void print_header(const std::string& figure, const std::string& scheme,
                         const core::AdmmParams& params) {
  std::printf("# %s — %s\n", figure.c_str(), scheme.c_str());
  std::printf("# M=4 learners, C=%.0f, rho=%.0f, %zu iterations, 50/50 split\n",
              params.c, params.rho, params.max_iterations);
  std::printf("# columns: dataset iteration ||z(t+1)-z(t)||^2 correct_ratio\n");
}

}  // namespace ppml::bench
