// Reproduces the paper's in-text benchmark table (§VI): centralized SVM
// accuracy at 50/50 train/test on the three datasets — the paper reports
// cancer 95%, higgs 70%, OCR 98% — plus the final accuracy each of our
// four distributed privacy-preserving schemes reaches against that
// benchmark.
#include "bench/bench_common.h"
#include "core/kernel_horizontal.h"
#include "core/linear_horizontal.h"
#include "core/vertical.h"
#include "data/partition.h"

using namespace ppml;

namespace {

struct Row {
  std::string dataset;
  double paper_benchmark;
  double centralized;
  double linear_h;
  double kernel_h;
  double linear_v;
  double kernel_v;
};

double centralized_accuracy(const bench::BenchDataset& dataset) {
  svm::TrainOptions options;
  options.c = 50.0;
  // Accuracy is insensitive to full SMO convergence at C=50 on these tasks
  // (verified in tests/); cap the pair-step budget to keep runtime sane.
  options.max_iterations = 3'000'000;
  const auto model = svm::train_linear_svm(dataset.split.train, options);
  return svm::accuracy(model.predict_all(dataset.split.test.x),
                       dataset.split.test.y);
}

}  // namespace

int main() {
  std::printf("# In-text accuracy table (paper §VI)\n");
  std::printf(
      "# centralized = our centralized SVM benchmark; paper = the paper's "
      "reported benchmark on the real dataset\n");
  std::printf(
      "%-8s %8s %12s %10s %10s %10s %10s\n", "dataset", "paper",
      "centralized", "linear-h", "kernel-h", "linear-v", "kernel-v");

  const core::AdmmParams params = bench::paper_params(60);
  for (const auto& [name, paper_acc, cap] :
       {std::tuple<std::string, double, std::size_t>{"cancer", 0.95, 0},
        {"higgs", 0.70, 4000},
        {"ocr", 0.98, 2400}}) {
    const auto dataset = bench::make_bench_dataset(name, cap);
    Row row;
    row.dataset = name;
    row.paper_benchmark = paper_acc;
    row.centralized = centralized_accuracy(dataset);

    const auto hp = data::partition_horizontally(dataset.split.train, 4, 7);
    const auto vp = data::partition_vertically(dataset.split.train, 4, 7);
    const double k = static_cast<double>(dataset.split.train.features());

    row.linear_h =
        core::train_linear_horizontal(hp, params, &dataset.split.test)
            .trace.final_accuracy();
    core::AdmmParams kernel_params = params;
    kernel_params.landmarks = 60;
    kernel_params.rho = params.rho / 16.0;  // paper-effective penalty, see F4b
    kernel_params.qp_tolerance = 1e-5;
    row.kernel_h =
        core::train_kernel_horizontal(hp, svm::Kernel::rbf(1.0 / k),
                                      kernel_params, &dataset.split.test)
            .trace.final_accuracy();
    row.linear_v = core::train_linear_vertical(vp, params, &dataset.split.test)
                       .trace.final_accuracy();
    row.kernel_v =
        core::train_kernel_vertical(vp, svm::Kernel::rbf(4.0 / k), params,
                                    &dataset.split.test)
            .trace.final_accuracy();

    std::printf("%-8s %7.0f%% %11.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                row.dataset.c_str(), row.paper_benchmark * 100.0,
                row.centralized * 100.0, row.linear_h * 100.0,
                row.kernel_h * 100.0, row.linear_v * 100.0,
                row.kernel_v * 100.0);
  }
  return 0;
}
