// Reproduces paper Fig. 4(d) + 4(h): NONLINEAR (RBF) SVM on VERTICALLY
// partitioned data — per-learner feature-subset kernels (additive model).
//
// Each learner factors an (N x N) kernel matrix over its feature subset,
// so the paper-size higgs/ocr rows exceed a laptop memory budget; the caps
// below keep K_m around 1k x 1k per learner (recorded in EXPERIMENTS.md;
// the convergence ordering between datasets is what the figure shows and
// is preserved).
#include "bench/bench_common.h"
#include "core/vertical.h"
#include "data/partition.h"

using namespace ppml;

namespace {
svm::Kernel kernel_for(const std::string& name) {
  // Feature-subset kernels see k/4 dims; scale gamma accordingly.
  if (name == "cancer") return svm::Kernel::rbf(4.0 / 9.0);
  if (name == "higgs") return svm::Kernel::rbf(4.0 / 28.0);
  return svm::Kernel::rbf(4.0 / 64.0);
}

std::size_t cap_for(const std::string& name) {
  if (name == "higgs") return 2200;  // 1100 train rows per learner kernel
  if (name == "ocr") return 2000;
  return 0;  // cancer: paper size
}
}  // namespace

int main() {
  const core::AdmmParams params = bench::paper_params();
  bench::print_header("Fig. 4(d)/(h)",
                      "nonlinear (RBF) SVM, vertical partition", params);

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    const auto dataset = bench::make_bench_dataset(name, cap_for(name));
    const auto partition =
        data::partition_vertically(dataset.split.train, 4, 7);
    const auto result = core::train_kernel_vertical(
        partition, kernel_for(name), params, &dataset.split.test);
    bench::print_trace(dataset.name, result.trace);
    std::printf("# %s final: dz2=%.3e accuracy=%.4f\n", dataset.name.c_str(),
                result.trace.final_delta_sq(),
                result.trace.final_accuracy());
  }
  return 0;
}
