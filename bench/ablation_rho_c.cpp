// Ablation X3: sensitivity to the paper's two tuning knobs (§VI discusses
// both): C trades margin width against violations; rho trades consensus
// speed against per-step fidelity ("If rho is set to be high, we put more
// emphasis on convergence than the max-margin property").
#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "core/vertical.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto hp = data::partition_horizontally(dataset.split.train, 4, 7);
  const auto vp = data::partition_vertically(dataset.split.train, 4, 7);

  std::printf("# Ablation: rho sweep (C = 50), cancer_like, 60 iterations\n");
  std::printf("%-10s %10s %12s %12s %12s\n", "rho", "acc_horiz", "dz2_horiz",
              "acc_vert", "dz2_vert");
  for (double rho : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    core::AdmmParams params = bench::paper_params(60);
    params.rho = rho;
    const auto h = core::train_linear_horizontal(hp, params,
                                                 &dataset.split.test);
    const auto v = core::train_linear_vertical(vp, params,
                                               &dataset.split.test);
    std::printf("%-10.1f %9.1f%% %12.3e %11.1f%% %12.3e\n", rho,
                h.trace.final_accuracy() * 100.0, h.trace.final_delta_sq(),
                v.trace.final_accuracy() * 100.0, v.trace.final_delta_sq());
  }

  std::printf("\n# Ablation: C sweep (rho = 100), cancer_like\n");
  std::printf("%-10s %10s %12s\n", "C", "acc_horiz", "dz2_horiz");
  for (double c : {0.1, 1.0, 10.0, 50.0, 200.0}) {
    core::AdmmParams params = bench::paper_params(60);
    params.c = c;
    const auto h = core::train_linear_horizontal(hp, params,
                                                 &dataset.split.test);
    std::printf("%-10.1f %9.1f%% %12.3e\n", c,
                h.trace.final_accuracy() * 100.0, h.trace.final_delta_sq());
  }
  return 0;
}
