// Ablation X8: stragglers under the synchronous consensus barrier.
//
// The paper's scheme is bulk-synchronous: every ADMM round waits for the
// slowest Mapper. This bench quantifies that sensitivity on the simulated
// cluster by slowing one node down and reading the simulated compute
// clock — motivation for asynchronous ADMM variants (future work).
#include "bench/bench_common.h"
#include "core/cluster_trainers.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto partition =
      data::partition_horizontally(dataset.split.train, 4, 7);
  core::AdmmParams params = bench::paper_params(30);

  std::printf("# Straggler sensitivity: one slow node out of 4 (linear "
              "horizontal, 30 rounds)\n");
  std::printf("%14s %18s %10s\n", "slowdown", "sim_compute_s", "accuracy");
  for (double slowdown : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    mapreduce::ClusterConfig config;
    config.num_nodes = 5;
    config.node_speed_factors = {slowdown, 1.0, 1.0, 1.0, 1.0};
    mapreduce::Cluster cluster(config);
    const auto result =
        core::train_linear_horizontal_on_cluster(cluster, partition, params);
    const double accuracy = svm::accuracy(
        result.model.predict_all(dataset.split.test.x), dataset.split.test.y);
    std::printf("%13.0fx %18.4f %9.1f%%\n", slowdown,
                result.cluster.job.simulated_compute_seconds,
                accuracy * 100.0);
  }
  std::printf("# simulated compute time scales with the straggler — every "
              "round barriers on it;\n# accuracy is unaffected (the "
              "protocol is synchronous and exact).\n");

  std::printf("\n# Speculative re-execution: deadline-factor sweep (10x "
              "straggler, replication 2).\n# A map attempt slower than "
              "factor x the median gets a backup on another replica;\n# 0 "
              "disables speculation. Lower factors fire earlier and cap the "
              "barrier harder.\n");
  std::printf("%14s %18s %12s %10s\n", "spec_factor", "sim_compute_s",
              "spec_runs", "accuracy");
  for (double factor : {0.0, 1.5, 2.0, 3.0, 5.0}) {
    mapreduce::ClusterConfig config;
    config.num_nodes = 5;
    config.replication = 2;
    config.node_speed_factors = {10.0, 1.0, 1.0, 1.0, 1.0};
    mapreduce::Cluster cluster(config);
    mapreduce::JobConfig job_config;
    job_config.speculation_factor = factor;
    const auto result = core::train_linear_horizontal_on_cluster(
        cluster, partition, params, job_config);
    const double accuracy = svm::accuracy(
        result.model.predict_all(dataset.split.test.x), dataset.split.test.y);
    std::printf("%14.1f %18.4f %12zu %9.1f%%\n", factor,
                result.cluster.job.simulated_compute_seconds,
                result.cluster.job.speculative_attempts, accuracy * 100.0);
  }
  std::printf("# speculation trades duplicate work (spec_runs) for a "
              "bounded barrier; the model\n# is bit-identical across the "
              "sweep — backups re-run the same deterministic task.\n");
  return 0;
}
