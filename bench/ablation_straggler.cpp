// Ablation X8: stragglers under the synchronous consensus barrier.
//
// The paper's scheme is bulk-synchronous: every ADMM round waits for the
// slowest Mapper. This bench quantifies that sensitivity on the simulated
// cluster by slowing one node down and reading the simulated compute
// clock, then runs the asynchronous bounded-staleness engine under the
// same delay storm and writes the sync-vs-async comparison to
// BENCH_async.json (gated against bench/baselines/ by scripts/verify.sh).
#include <fstream>

#include "bench/bench_common.h"
#include "core/cluster_trainers.h"
#include "core/consensus_engine.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"
#include "mapreduce/network.h"
#include "obs/json.h"
#include "obs/report.h"

using namespace ppml;

namespace {

/// Global linear-SVM objective 0.5||w||^2 + C sum hinge at the consensus
/// iterate — the quantity both the sync and async runs should agree on at
/// their common ADMM fixed point.
double hinge_objective(const svm::LinearModel& model,
                       const data::Dataset& train, double c) {
  double objective = 0.0;
  for (double w : model.w) objective += 0.5 * w * w;
  for (std::size_t i = 0; i < train.size(); ++i) {
    double f = model.b;
    for (std::size_t j = 0; j < train.features(); ++j)
      f += model.w[j] * train.x(i, j);
    objective += c * std::max(0.0, 1.0 - train.y[i] * f);
  }
  return objective;
}

struct EngineRun {
  svm::LinearModel model;
  core::ConsensusRunResult run;
};

/// One in-memory engine run over the 8-way partition: synchronous
/// (FullParticipation, no plan) or bounded-staleness async under `plan`.
EngineRun run_engine(const data::HorizontalPartition& partition,
                     const core::AdmmParams& params,
                     const mapreduce::FaultPlan* plan) {
  const std::size_t m = partition.learners();
  const std::size_t k = partition.shards.front().features();
  std::vector<std::shared_ptr<core::ConsensusLearner>> learners;
  for (const data::Dataset& shard : partition.shards)
    learners.push_back(
        std::make_shared<core::LinearHorizontalLearner>(shard, m, params));
  core::AveragingCoordinator coordinator(k + 1);
  EngineRun out;
  if (params.asynchronous()) {
    core::BoundedStalenessPolicy policy;
    core::ConsensusEngine engine(learners, coordinator, params, policy);
    core::InMemoryTransport transport(plan);
    out.run = engine.run(transport);
  } else {
    core::FullParticipation policy;
    core::ConsensusEngine engine(learners, coordinator, params, policy);
    core::InMemoryTransport transport;
    out.run = engine.run(transport);
  }
  out.model = svm::LinearModel{coordinator.z(), coordinator.s()};
  return out;
}

}  // namespace

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto partition =
      data::partition_horizontally(dataset.split.train, 4, 7);
  core::AdmmParams params = bench::paper_params(30);

  std::printf("# Straggler sensitivity: one slow node out of 4 (linear "
              "horizontal, 30 rounds)\n");
  std::printf("%14s %18s %10s\n", "slowdown", "sim_compute_s", "accuracy");
  for (double slowdown : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    mapreduce::ClusterConfig config;
    config.num_nodes = 5;
    config.node_speed_factors = {slowdown, 1.0, 1.0, 1.0, 1.0};
    mapreduce::Cluster cluster(config);
    const auto result =
        core::train_linear_horizontal_on_cluster(cluster, partition, params);
    const double accuracy = svm::accuracy(
        result.model.predict_all(dataset.split.test.x), dataset.split.test.y);
    std::printf("%13.0fx %18.4f %9.1f%%\n", slowdown,
                result.cluster.job.simulated_compute_seconds,
                accuracy * 100.0);
  }
  std::printf("# simulated compute time scales with the straggler — every "
              "round barriers on it;\n# accuracy is unaffected (the "
              "protocol is synchronous and exact).\n");

  std::printf("\n# Speculative re-execution: deadline-factor sweep (10x "
              "straggler, replication 2).\n# A map attempt slower than "
              "factor x the median gets a backup on another replica;\n# 0 "
              "disables speculation. Lower factors fire earlier and cap the "
              "barrier harder.\n");
  std::printf("%14s %18s %12s %10s\n", "spec_factor", "sim_compute_s",
              "spec_runs", "accuracy");
  for (double factor : {0.0, 1.5, 2.0, 3.0, 5.0}) {
    mapreduce::ClusterConfig config;
    config.num_nodes = 5;
    config.replication = 2;
    config.node_speed_factors = {10.0, 1.0, 1.0, 1.0, 1.0};
    mapreduce::Cluster cluster(config);
    mapreduce::JobConfig job_config;
    job_config.speculation_factor = factor;
    const auto result = core::train_linear_horizontal_on_cluster(
        cluster, partition, params, job_config);
    const double accuracy = svm::accuracy(
        result.model.predict_all(dataset.split.test.x), dataset.split.test.y);
    std::printf("%14.1f %18.4f %12zu %9.1f%%\n", factor,
                result.cluster.job.simulated_compute_seconds,
                result.cluster.job.speculative_attempts, accuracy * 100.0);
  }
  std::printf("# speculation trades duplicate work (spec_runs) for a "
              "bounded barrier; the model\n# is bit-identical across the "
              "sweep — backups re-run the same deterministic task.\n");

  // --- Async bounded-staleness vs the sync barrier under a delay storm. ---
  // 8 learners; party 0 computes 10x slower every round. The sync engine
  // barriers on the straggler (wall = rounds x 10); the async engine closes
  // each round at a 7-of-8 quorum and carries the straggler's stale value
  // forward, reaching the same fixed point in a fraction of the wall-clock.
  std::printf("\n# Async bounded-staleness vs sync barrier: 8 learners, "
              "party 0 delayed 10x every round.\n");
  constexpr std::size_t kStormLearners = 8;
  constexpr double kStormFactor = 10.0;
  const auto storm_partition =
      data::partition_horizontally(dataset.split.train, kStormLearners, 7);
  const core::AdmmParams sync_params = bench::paper_params(400);
  core::AdmmParams async_params = sync_params;
  async_params.async_quorum_fraction = 0.875;  // quorum 7 of 8
  async_params.max_staleness = 64;             // carry forward, never drop
  // Uniform stale weights keep the async fixed point identical to the sync
  // one (at convergence a carried value equals a fresh one); the async run
  // spends its wall-clock budget on more, cheaper rounds instead.
  async_params.stale_weight_mode = core::StaleWeight::kUniform;
  async_params.max_iterations = 400;

  mapreduce::FaultPlan plan;
  plan.seed = 7;
  plan.compute_delays.push_back(
      {0, sync_params.max_iterations, 0, kStormFactor});

  const EngineRun sync_run = run_engine(storm_partition, sync_params, nullptr);
  const EngineRun async_run =
      run_engine(storm_partition, async_params, &plan);

  // Sync wall-clock under the same storm is analytic: every round barriers
  // on the slowest party's nominal 1.0 s step times its delay factor.
  double sync_wall = 0.0;
  for (std::size_t r = 0; r < sync_params.max_iterations; ++r) {
    double slowest = 1.0;
    for (std::size_t i = 0; i < kStormLearners; ++i)
      slowest = std::max(slowest, plan.compute_delay_factor(r, i));
    sync_wall += slowest;
  }
  const double async_wall = async_run.run.async_seconds;

  const double c = sync_params.c;
  const double sync_objective =
      hinge_objective(sync_run.model, dataset.split.train, c);
  const double async_objective =
      hinge_objective(async_run.model, dataset.split.train, c);
  const double objective_gap =
      std::abs(async_objective - sync_objective) /
      std::max(1.0, std::abs(sync_objective));
  const double sync_accuracy = svm::accuracy(
      sync_run.model.predict_all(dataset.split.test.x), dataset.split.test.y);
  const double async_accuracy = svm::accuracy(
      async_run.model.predict_all(dataset.split.test.x), dataset.split.test.y);

  std::printf("%10s %14s %12s %10s %12s\n", "mode", "sim_wall_s", "objective",
              "accuracy", "watchdog");
  std::printf("%10s %14.3f %12.4f %9.1f%% %12s\n", "sync", sync_wall,
              sync_objective, sync_accuracy * 100.0,
              sync_run.run.watchdog_tripped ? "TRIPPED" : "ok");
  std::printf("%10s %14.3f %12.4f %9.1f%% %12s\n", "async", async_wall,
              async_objective, async_accuracy * 100.0,
              async_run.run.watchdog_tripped ? "TRIPPED" : "ok");
  std::printf("# objective gap %.2e (relative), async wall %.2fx of sync\n",
              objective_gap, async_wall / sync_wall);

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "async_consensus");
  obs::JsonValue config = obs::JsonValue::object();
  config.set("learners", kStormLearners);
  config.set("rounds", sync_params.max_iterations);
  config.set("straggler_party", std::size_t{0});
  config.set("straggler_factor", kStormFactor);
  config.set("quorum_fraction", async_params.async_quorum_fraction);
  config.set("max_staleness", async_params.max_staleness);
  config.set("stale_decay", async_params.stale_decay);
  report.set("config", std::move(config));
  obs::JsonValue sync_row = obs::JsonValue::object();
  sync_row.set("wall_s", sync_wall);
  sync_row.set("objective", sync_objective);
  sync_row.set("test_accuracy", sync_accuracy);
  sync_row.set("watchdog_tripped", sync_run.run.watchdog_tripped);
  report.set("sync", std::move(sync_row));
  obs::JsonValue async_row = obs::JsonValue::object();
  async_row.set("wall_s", async_wall);
  async_row.set("objective", async_objective);
  async_row.set("test_accuracy", async_accuracy);
  async_row.set("watchdog_tripped", async_run.run.watchdog_tripped);
  async_row.set("deadline_expirations", async_run.run.deadline_expirations);
  async_row.set("staleness_drops", async_run.run.staleness_drops);
  report.set("async", std::move(async_row));
  report.set("objective_gap_rel", objective_gap);
  report.set("speedup", sync_wall / async_wall);
  obs::write_json_file("BENCH_async.json", report);
  std::printf("# report written to BENCH_async.json\n");

  // Acceptance (ISSUE 6): async matches the sync objective to 1e-3 and
  // finishes in at most half the sync wall-clock. Fail loudly so the
  // verify.sh bench gate catches a regression before bench_check diffs.
  if (objective_gap > 1e-3) {
    std::fprintf(stderr, "FAIL: async objective gap %.3e > 1e-3\n",
                 objective_gap);
    return 1;
  }
  if (async_wall > 0.5 * sync_wall) {
    std::fprintf(stderr, "FAIL: async wall %.3f > 0.5 x sync wall %.3f\n",
                 async_wall, sync_wall);
    return 1;
  }
  return 0;
}
