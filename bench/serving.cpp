// Secure prediction serving under open-loop load (docs/serving.md).
//
// Four scenarios over models trained once on the cancer substitute:
//   1. micro-batch sweep (linear): max_batch 1 / 8 / 64 at a fixed offered
//      rate — the p99-vs-QPS trade the serving layer exists for;
//   2. kernel-row reuse: a bounded pool of distinct query points cycled
//      across many batches, pinning the cross-batch KernelCache hit rate;
//   3. admission overload: 2x the configured sustainable rate — the server
//      must shed deterministically, not queue unboundedly or crash;
//   4. one instrumented run: serve.* span stats and counters for the
//      report.
//
// Determinism contract (scripts/bench_check.py): every quantity the
// VIRTUAL clock decides — batching, occupancy, admission splits, cache
// traffic, span/counter counts — is reproduced exactly run to run and is
// gated exactly against bench/baselines/BENCH_serving.json. Only wall_s /
// qps / latency quantiles carry machine noise (slack-gated). The bench
// also hard-fails if a sampled batched decision value differs from the
// per-query secure prediction path by a single bit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/prediction_server.h"
#include "core/vertical.h"
#include "obs/obs.h"
#include "obs/report.h"

namespace ppml {
namespace {

linalg::Matrix one_row(std::span<const double> x) {
  linalg::Matrix m(1, x.size());
  for (std::size_t j = 0; j < x.size(); ++j) m(0, j) = x[j];
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct DriveConfig {
  std::size_t queries = 0;
  std::size_t clients = 4;
  double offered_qps = 50000.0;  ///< virtual arrival rate
  std::size_t row_pool = 0;      ///< cycle queries over this many test rows
};

struct RunOutcome {
  core::ServingStats stats;
  std::vector<core::ServeResult> results;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< latency seconds
};

/// Open-loop drive: arrivals at exactly offered_qps on the virtual clock,
/// advance() before each submit (the event-loop contract), drain at end.
RunOutcome drive(core::PredictionServer& server, const linalg::Matrix& x,
                 const DriveConfig& d) {
  const double dt = 1.0 / d.offered_qps;
  const std::size_t pool = std::min(d.row_pool == 0 ? x.rows() : d.row_pool,
                                    x.rows());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < d.queries; ++i) {
    const double now = static_cast<double>(i) * dt;
    server.advance(now);
    server.submit(i % d.clients, x.row(i % pool), now);
  }
  server.drain(static_cast<double>(d.queries) * dt);
  RunOutcome out;
  out.wall_s = seconds_since(t0);
  out.results = server.take_results();
  out.stats = server.stats();
  out.qps = out.wall_s == 0.0
                ? 0.0
                : static_cast<double>(out.stats.served) / out.wall_s;
  std::vector<double> latency;
  latency.reserve(out.results.size());
  for (const auto& r : out.results)
    latency.push_back(r.serve_time - r.submit_time + r.compute_seconds);
  std::sort(latency.begin(), latency.end());
  const auto quant = [&](double q) {
    if (latency.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latency.size() - 1));
    return latency[idx];
  };
  out.p50 = quant(0.50);
  out.p95 = quant(0.95);
  out.p99 = quant(0.99);
  return out;
}

/// Sampled bit-identity audit: every `stride`-th served query must decode
/// to EXACTLY the per-query (fresh one-shot session, round 0) value.
template <typename ModelView>
void audit_bit_identity(const ModelView& model, const core::AdmmParams& params,
                        const std::vector<core::ServeResult>& results,
                        const linalg::Matrix& x, std::size_t pool,
                        std::size_t stride, const char* label) {
  std::size_t checked = 0;
  for (const auto& r : results) {
    if (r.query_id % stride != 0) continue;
    const std::size_t row = static_cast<std::size_t>(r.query_id - 1) % pool;
    const linalg::Vector reference =
        core::secure_vertical_decision_values(model, one_row(x.row(row)),
                                              params);
    if (reference[0] != r.decision_value) {
      std::fprintf(stderr,
                   "FATAL: %s query %llu: batched %.17g != per-query %.17g\n",
                   label, static_cast<unsigned long long>(r.query_id),
                   r.decision_value, reference[0]);
      std::exit(1);
    }
    ++checked;
  }
  std::printf("# %s: %zu sampled queries bit-identical to per-query path\n",
              label, checked);
}

void add_latency_keys(obs::JsonValue& row, const RunOutcome& out) {
  row.set("wall_s", out.wall_s);
  row.set("qps", out.qps);
  row.set("p50_latency_s", out.p50);
  row.set("p95_latency_s", out.p95);
  row.set("p99_latency_s", out.p99);
}

int run(std::size_t queries) {
  std::printf("# serving bench — %zu queries (cancer substitute)\n", queries);
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto partition = data::partition_vertically(dataset.split.train, 4, 7);

  core::AdmmParams linear_params = bench::paper_params(30);
  const auto linear = core::train_linear_vertical(partition, linear_params,
                                                  nullptr);
  core::AdmmParams kernel_params = bench::paper_params(15);
  const auto kernel = core::train_kernel_vertical(
      partition, svm::Kernel::rbf(0.3), kernel_params, nullptr);

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "serving");
  report.set("dataset", dataset.name);
  report.set("queries", queries);

  // --- 1. micro-batch sweep (linear) --------------------------------------
  std::printf("\n## Micro-batch sweep, linear, offered 50k qps (virtual)\n");
  std::printf("%9s %10s %10s %8s %10s %12s %12s %12s\n", "max_batch",
              "served", "batches", "occ", "wall_s", "qps", "p50_ms",
              "p99_ms");
  obs::JsonValue sweep = obs::JsonValue::array();
  for (std::size_t max_batch : {std::size_t{1}, std::size_t{8},
                                std::size_t{64}}) {
    core::ServingConfig config;
    config.max_batch = max_batch;
    config.max_linger = 0.002;
    core::PredictionServer server(linear.model, linear_params, config);
    DriveConfig d;
    d.queries = queries;
    const RunOutcome out = drive(server, dataset.split.test.x, d);
    std::printf("%9zu %10zu %10zu %8.2f %10.3f %12.0f %12.4f %12.4f\n",
                max_batch, out.stats.served, out.stats.batches,
                out.stats.mean_occupancy(), out.wall_s, out.qps,
                out.p50 * 1e3, out.p99 * 1e3);
    if (max_batch == 64)
      audit_bit_identity(linear.model, linear_params, out.results,
                         dataset.split.test.x, dataset.split.test.x.rows(),
                         199, "linear batch=64");
    obs::JsonValue row = obs::JsonValue::object();
    row.set("max_batch", max_batch);
    row.set("served", out.stats.served);
    row.set("batches", out.stats.batches);
    row.set("mean_occupancy", out.stats.mean_occupancy());
    row.set("full_flushes", out.stats.full_flushes);
    row.set("linger_flushes", out.stats.linger_flushes);
    row.set("drain_flushes", out.stats.drain_flushes);
    add_latency_keys(row, out);
    sweep.push(std::move(row));
  }
  report.set("linear_batch_sweep", std::move(sweep));

  // --- 2. kernel-row reuse across batches ---------------------------------
  {
    const std::size_t kernel_queries =
        std::max<std::size_t>(queries / 4, 500);
    const std::size_t distinct = 64;
    std::printf("\n## Kernel-row reuse: %zu queries cycling %zu points\n",
                kernel_queries, distinct);
    core::ServingConfig config;
    config.max_batch = 32;
    config.max_linger = 0.002;
    config.cache_slots = 128;
    core::PredictionServer server(kernel.model, kernel_params, config);
    DriveConfig d;
    d.queries = kernel_queries;
    d.row_pool = distinct;
    const RunOutcome out = drive(server, dataset.split.test.x, d);
    const std::int64_t hits = server.cache_hits();
    const std::int64_t misses = server.cache_misses();
    const double hit_rate = server.cache_hit_rate();
    std::printf("served %zu in %zu batches: cache %lld hits / %lld misses "
                "(rate %.4f, bypass %zu), %.0f qps, p99 %.4f ms\n",
                out.stats.served, out.stats.batches,
                static_cast<long long>(hits), static_cast<long long>(misses),
                hit_rate, out.stats.cache_bypass, out.qps, out.p99 * 1e3);
    audit_bit_identity(kernel.model, kernel_params, out.results,
                       dataset.split.test.x, distinct, 199, "kernel cached");
    obs::JsonValue row = obs::JsonValue::object();
    row.set("queries", kernel_queries);
    row.set("distinct_points", distinct);
    row.set("cache_slots", config.cache_slots);
    row.set("served", out.stats.served);
    row.set("batches", out.stats.batches);
    row.set("cache_hits", hits);
    row.set("cache_misses", misses);
    row.set("cache_bypass", out.stats.cache_bypass);
    row.set("cache_hit_rate", hit_rate);
    add_latency_keys(row, out);
    report.set("kernel_cache", std::move(row));
  }

  // --- 3. admission overload: 2x sustainable ------------------------------
  {
    const std::size_t overload_queries = std::min<std::size_t>(queries,
                                                               100000);
    std::printf("\n## Overload: 8 clients x 2500 qps admitted capacity, "
                "offered 40k qps (2x)\n");
    core::ServingConfig config;
    config.max_batch = 64;
    config.max_linger = 0.002;
    config.client_rate = 2500.0;  // 8 clients: 20k qps sustainable
    core::PredictionServer server(linear.model, linear_params, config);
    DriveConfig d;
    d.queries = overload_queries;
    d.clients = 8;
    d.offered_qps = 40000.0;
    const RunOutcome out = drive(server, dataset.split.test.x, d);
    const auto& s = out.stats;
    if (s.queued + s.shed_rate + s.shed_queue != s.submitted ||
        s.served != s.queued || s.shed_rate == 0) {
      std::fprintf(stderr, "FATAL: overload admission accounting broken\n");
      return 1;
    }
    const double shed_fraction =
        static_cast<double>(s.shed_rate + s.shed_queue) /
        static_cast<double>(s.submitted);
    std::printf("submitted %zu: served %zu, shed %zu (%.1f%%) — queue "
                "peaked bounded, no crash\n",
                s.submitted, s.served, s.shed_rate + s.shed_queue,
                shed_fraction * 100.0);
    obs::JsonValue row = obs::JsonValue::object();
    row.set("offered_rate", 40000);
    row.set("sustainable_rate", 20000);
    row.set("clients", d.clients);
    row.set("submitted", s.submitted);
    row.set("served", s.served);
    row.set("shed_rate", s.shed_rate);
    row.set("shed_queue", s.shed_queue);
    row.set("shed_fraction", shed_fraction);
    add_latency_keys(row, out);
    report.set("overload", std::move(row));
  }

  // --- 4. instrumented run: serve.* spans and counters --------------------
  {
    const std::size_t instrumented_queries = std::min<std::size_t>(queries,
                                                                   20000);
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    {
      obs::Session session(&tracer, &metrics);
      core::ServingConfig config;
      config.max_batch = 64;
      config.max_linger = 0.002;
      core::PredictionServer server(linear.model, linear_params, config);
      DriveConfig d;
      d.queries = instrumented_queries;
      drive(server, dataset.split.test.x, d);
    }
    report.set("phases_instrumented", obs::span_stats_json(tracer));
    // Counters only: every counter is virtual-clock deterministic (exact
    // gate). Histogram buckets of the real-time latency metrics are NOT —
    // they stay out of the report.
    obs::JsonValue counters = obs::JsonValue::object();
    for (const auto& [name, value] : metrics.counters())
      counters.set(name, value);
    report.set("counters_instrumented", std::move(counters));
    const auto occupancy = metrics.histogram("serve.batch.occupancy");
    std::printf("\n## Instrumented (%zu queries): occupancy p50 %.0f, "
                "serve.batch spans %llu\n",
                instrumented_queries, occupancy.quantile(0.5),
                static_cast<unsigned long long>(occupancy.total));
  }

  obs::write_json_file("BENCH_serving.json", report);
  std::printf("\n# report written to BENCH_serving.json\n");
  return 0;
}

}  // namespace
}  // namespace ppml

int main(int argc, char** argv) {
  std::size_t queries = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--queries N]\n", argv[0]);
      return 2;
    }
  }
  return ppml::run(queries);
}
