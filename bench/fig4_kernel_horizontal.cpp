// Reproduces paper Fig. 4(b) + 4(f): NONLINEAR (RBF) SVM on HORIZONTALLY
// partitioned data — reduced-consensus ADMM with public landmarks.
#include "bench/bench_common.h"
#include "core/kernel_horizontal.h"
#include "data/partition.h"

using namespace ppml;

namespace {
// Per-dataset RBF width: gamma ~ 1/k on standardized features.
svm::Kernel kernel_for(const std::string& name) {
  if (name == "cancer") return svm::Kernel::rbf(1.0 / 9.0);
  if (name == "higgs") return svm::Kernel::rbf(1.0 / 28.0);
  return svm::Kernel::rbf(1.0 / 64.0);
}
}  // namespace

int main() {
  core::AdmmParams params = bench::paper_params();
  params.landmarks = 60;
  // The paper's eq. (19) scales the augmented penalty as rho/M where our
  // consistent derivation (DESIGN.md §2.2) yields rho*M; to run at the
  // paper's EFFECTIVE penalty we set rho_ours = rho_paper / M^2. This is
  // what reproduces Fig. 4(b)'s steep ||dz||^2 decay (EXPERIMENTS.md F4b).
  params.rho = 100.0 / 16.0;
  params.qp_tolerance = 1e-5;
  bench::print_header("Fig. 4(b)/(f)",
                      "nonlinear (RBF) SVM, horizontal partition", params);
  std::printf("# landmarks l=%zu (reduced consensus space, paper §IV-B)\n",
              params.landmarks);

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    // Per-mapper dual Grams are (N/8)^2 and dominate the cost; higgs/ocr
    // are capped (documented in EXPERIMENTS.md; shapes unchanged).
    const std::size_t cap =
        name == "higgs" ? 4000 : (name == "ocr" ? 2400 : 0);
    const auto dataset = bench::make_bench_dataset(name, cap);
    const auto partition =
        data::partition_horizontally(dataset.split.train, 4, 7);
    const auto result = core::train_kernel_horizontal(
        partition, kernel_for(name), params, &dataset.split.test);
    bench::print_trace(dataset.name, result.trace);
    std::printf("# %s final: dz2=%.3e accuracy=%.4f\n", dataset.name.c_str(),
                result.trace.final_delta_sq(),
                result.trace.final_accuracy());
  }
  return 0;
}
