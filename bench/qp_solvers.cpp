// Ablation X4: the inner QP solvers (google-benchmark).
//
// The per-mapper dual is solved every ADMM iteration with a constant Q and
// a drifting linear term, so warm-started coordinate descent is the design
// point — this bench measures the warm-start payoff and compares solvers.
//
// Besides the google-benchmark timings, the binary runs a kernel-cache
// budget sweep (dense Q vs unlimited / 25% / minimum row-cache budgets for
// the cached SMO path) and writes BENCH_qp.json (working directory) with
// per-mode durations, cache hit statistics, and the max |x - x_dense|
// cross-check (expected exactly 0.0 — the cached path is bit-identical).
// Pass `--metrics PATH` to also dump the obs counters (qp.cache.*,
// qp.smo.*) collected during the sweep. docs/performance.md explains how
// to read the output.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <string>

#include "data/generators.h"
#include "linalg/blas.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "qp/box_qp.h"
#include "qp/diagonal_qp.h"
#include "qp/projected_gradient.h"
#include "qp/smo.h"
#include "svm/kernel.h"

using namespace ppml;

namespace {

struct Problem {
  linalg::Matrix q;
  linalg::Vector p;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  linalg::Matrix b(n, n);
  for (double& v : b.data()) v = normal(rng);
  Problem problem;
  problem.q = linalg::gram_a_at(b);
  for (std::size_t i = 0; i < n; ++i) problem.q(i, i) += 1.0;
  problem.p.resize(n);
  for (double& v : problem.p) v = normal(rng);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) problem.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  return problem;
}

void BM_BoxQpColdStart(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  const qp::BoxQpSolver solver(problem.q, 0.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem.p));
  }
}
BENCHMARK(BM_BoxQpColdStart)->Arg(50)->Arg(200)->Arg(800);

void BM_BoxQpWarmStart(benchmark::State& state) {
  // Simulates the ADMM inner loop: p drifts slightly, lambda warm-starts.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  const qp::BoxQpSolver solver(problem.q, 0.0, 50.0);
  qp::Result previous = solver.solve(problem.p);
  linalg::Vector p = problem.p;
  for (auto _ : state) {
    for (double& v : p) v += 1e-3;
    previous = solver.solve(p, previous.x);
    benchmark::DoNotOptimize(previous);
  }
}
BENCHMARK(BM_BoxQpWarmStart)->Arg(50)->Arg(200)->Arg(800);

void BM_ProjectedGradient(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qp::solve_box_qp_projected_gradient(problem.q, problem.p, 0.0, 50.0));
  }
}
BENCHMARK(BM_ProjectedGradient)->Arg(50)->Arg(200)->Arg(800);

void BM_Smo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  qp::SmoProblem smo{problem.q, problem.p, problem.y, 50.0, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_smo(smo));
  }
}
BENCHMARK(BM_Smo)->Arg(50)->Arg(200)->Arg(800);

void BM_DiagonalQpExact(benchmark::State& state) {
  // No dense Q here — the diagonal solver is what makes the vertical
  // reducer step O(N log) instead of O(N^2); generate vectors directly.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(n);
  std::normal_distribution<double> normal;
  qp::DiagonalQpProblem diagonal;
  diagonal.d.assign(n, 0.04);  // M/rho at the paper's settings
  diagonal.p.resize(n);
  for (double& v : diagonal.p) v = normal(rng);
  diagonal.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) diagonal.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  diagonal.c = 50.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_diagonal_qp(diagonal));
  }
}
BENCHMARK(BM_DiagonalQpExact)->Arg(200)->Arg(2000)->Arg(20000);

// ------------------------------------------------------ cached SMO bench

/// SVM-dual-shaped problem over an RBF Gram (rings data): p = 1, delta = 0.
struct KernelProblem {
  linalg::Matrix x;
  linalg::Vector y;
  svm::Kernel kernel = svm::Kernel::rbf(0.5);
  double c = 50.0;

  qp::KernelCache::RowEvaluator evaluator() const {
    return [this](std::size_t i, std::span<double> out) {
      const auto xi = x.row(i);
      for (std::size_t j = 0; j < x.rows(); ++j)
        out[j] = y[i] * y[j] * kernel(xi, x.row(j));
    };
  }

  linalg::Matrix dense_q() const {
    const linalg::Matrix k = svm::gram(kernel, x);
    linalg::Matrix q(y.size(), y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      for (std::size_t j = 0; j < y.size(); ++j)
        q(i, j) = y[i] * y[j] * k(i, j);
    return q;
  }
};

KernelProblem make_kernel_problem(std::size_t n) {
  const data::Dataset rings = data::make_two_rings(n, 1.0, 3.0, 0.1, n);
  KernelProblem problem;
  problem.x = rings.x;
  problem.y = rings.y;
  return problem;
}

void BM_SmoCached(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t budget_percent = static_cast<std::size_t>(state.range(1));
  const KernelProblem problem = make_kernel_problem(n);
  const std::size_t budget =
      budget_percent == 100
          ? 0  // unlimited
          : std::max<std::size_t>(1, (n * budget_percent / 100) * n * 8);
  const linalg::Vector p(n, 1.0);
  for (auto _ : state) {
    qp::KernelCache cache(n, problem.evaluator(), budget);
    benchmark::DoNotOptimize(
        qp::solve_smo(cache, p, problem.y, problem.c, 0.0));
  }
}
BENCHMARK(BM_SmoCached)
    ->Args({160, 100})
    ->Args({160, 25})
    ->Args({320, 100})
    ->Args({320, 25});

// -------------------------------------------- cache-budget sweep (JSON)

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

obs::JsonValue run_cache_sweep() {
  obs::JsonValue sweep = obs::JsonValue::array();
  for (const std::size_t n : {std::size_t{160}, std::size_t{320}}) {
    const KernelProblem problem = make_kernel_problem(n);
    const linalg::Vector p(n, 1.0);
    qp::Options options;
    options.tolerance = 1e-5;
    options.max_iterations = 200'000;

    // Dense reference: materialized Q (the memory-hungry baseline).
    auto start = std::chrono::steady_clock::now();
    qp::SmoProblem dense_problem{problem.dense_q(), p, problem.y, problem.c,
                                 0.0};
    const qp::Result dense = qp::solve_smo(dense_problem, options);
    const double dense_seconds = seconds_since(start);

    obs::JsonValue size_row = obs::JsonValue::object();
    size_row.set("n", n);
    size_row.set("kernel", problem.kernel.describe());
    size_row.set("c", problem.c);
    obs::JsonValue dense_row = obs::JsonValue::object();
    dense_row.set("mode", "dense");
    dense_row.set("q_bytes", n * n * sizeof(double));
    dense_row.set("seconds", dense_seconds);
    dense_row.set("iterations", dense.iterations);
    dense_row.set("converged", dense.converged);
    obs::JsonValue modes = obs::JsonValue::array();
    modes.push(std::move(dense_row));

    struct BudgetMode {
      const char* name;
      std::size_t bytes;
    };
    const BudgetMode budgets[] = {
        {"cache_full", 0},
        {"cache_25pct", (n / 4) * n * sizeof(double)},
        {"cache_min", 1},  // clamped to two resident rows: near row-recompute
    };
    for (const BudgetMode& mode : budgets) {
      start = std::chrono::steady_clock::now();
      qp::KernelCache cache(n, problem.evaluator(), mode.bytes);
      const qp::Result cached =
          qp::solve_smo(cache, p, problem.y, problem.c, 0.0, options);
      const double cached_seconds = seconds_since(start);

      double max_diff = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        max_diff = std::max(max_diff, std::abs(cached.x[i] - dense.x[i]));

      obs::JsonValue row = obs::JsonValue::object();
      row.set("mode", mode.name);
      row.set("budget_bytes", mode.bytes);
      row.set("capacity_rows", cache.capacity_rows());
      row.set("seconds", cached_seconds);
      row.set("iterations", cached.iterations);
      row.set("converged", cached.converged);
      row.set("cache_hits", cache.hits());
      row.set("cache_misses", cache.misses());
      row.set("cache_evictions", cache.evictions());
      row.set("cache_hit_rate", cache.hit_rate());
      row.set("max_abs_diff_vs_dense", max_diff);  // expected exactly 0.0
      modes.push(std::move(row));
      std::printf(
          "# smo_cache n=%zu mode=%-11s seconds=%.4f hit_rate=%.3f "
          "max_diff=%.1e\n",
          n, mode.name, cached_seconds, cache.hit_rate(), max_diff);
    }
    size_row.set("modes", std::move(modes));
    sweep.push(std::move(size_row));
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own flag before handing argv to google-benchmark.
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "qp_solvers");
  {
    obs::Session session(&tracer, &metrics);
    report.set("cache_sweep", run_cache_sweep());
  }
  report.set("metrics", obs::metrics_json(metrics));
  obs::write_json_file("BENCH_qp.json", report);
  std::printf("# report written to BENCH_qp.json\n");
  if (!metrics_path.empty()) {
    obs::write_json_file(metrics_path, obs::metrics_json(metrics));
    std::printf("# metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
