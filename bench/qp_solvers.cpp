// Ablation X4: the inner QP solvers (google-benchmark).
//
// The per-mapper dual is solved every ADMM iteration with a constant Q and
// a drifting linear term, so warm-started coordinate descent is the design
// point — this bench measures the warm-start payoff and compares solvers.
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/blas.h"
#include "qp/box_qp.h"
#include "qp/diagonal_qp.h"
#include "qp/projected_gradient.h"
#include "qp/smo.h"

using namespace ppml;

namespace {

struct Problem {
  linalg::Matrix q;
  linalg::Vector p;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal;
  linalg::Matrix b(n, n);
  for (double& v : b.data()) v = normal(rng);
  Problem problem;
  problem.q = linalg::gram_a_at(b);
  for (std::size_t i = 0; i < n; ++i) problem.q(i, i) += 1.0;
  problem.p.resize(n);
  for (double& v : problem.p) v = normal(rng);
  problem.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) problem.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  return problem;
}

void BM_BoxQpColdStart(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  const qp::BoxQpSolver solver(problem.q, 0.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem.p));
  }
}
BENCHMARK(BM_BoxQpColdStart)->Arg(50)->Arg(200)->Arg(800);

void BM_BoxQpWarmStart(benchmark::State& state) {
  // Simulates the ADMM inner loop: p drifts slightly, lambda warm-starts.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  const qp::BoxQpSolver solver(problem.q, 0.0, 50.0);
  qp::Result previous = solver.solve(problem.p);
  linalg::Vector p = problem.p;
  for (auto _ : state) {
    for (double& v : p) v += 1e-3;
    previous = solver.solve(p, previous.x);
    benchmark::DoNotOptimize(previous);
  }
}
BENCHMARK(BM_BoxQpWarmStart)->Arg(50)->Arg(200)->Arg(800);

void BM_ProjectedGradient(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qp::solve_box_qp_projected_gradient(problem.q, problem.p, 0.0, 50.0));
  }
}
BENCHMARK(BM_ProjectedGradient)->Arg(50)->Arg(200)->Arg(800);

void BM_Smo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Problem problem = make_problem(n, n);
  qp::SmoProblem smo{problem.q, problem.p, problem.y, 50.0, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_smo(smo));
  }
}
BENCHMARK(BM_Smo)->Arg(50)->Arg(200)->Arg(800);

void BM_DiagonalQpExact(benchmark::State& state) {
  // No dense Q here — the diagonal solver is what makes the vertical
  // reducer step O(N log) instead of O(N^2); generate vectors directly.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(n);
  std::normal_distribution<double> normal;
  qp::DiagonalQpProblem diagonal;
  diagonal.d.assign(n, 0.04);  // M/rho at the paper's settings
  diagonal.p.resize(n);
  for (double& v : diagonal.p) v = normal(rng);
  diagonal.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) diagonal.y[i] = i % 2 == 0 ? 1.0 : -1.0;
  diagonal.c = 50.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp::solve_diagonal_qp(diagonal));
  }
}
BENCHMARK(BM_DiagonalQpExact)->Arg(200)->Arg(2000)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
