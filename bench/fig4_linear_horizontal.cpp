// Reproduces paper Fig. 4(a) + 4(e): convergence ||z^{t+1}-z^t||^2 and
// correct ratio per iteration for the LINEAR SVM on HORIZONTALLY
// partitioned data, across the three datasets.
#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const core::AdmmParams params = bench::paper_params();
  bench::print_header("Fig. 4(a)/(e)", "linear SVM, horizontal partition",
                      params);

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    const auto dataset = bench::make_bench_dataset(name);
    const auto partition =
        data::partition_horizontally(dataset.split.train, 4, 7);
    const auto result =
        core::train_linear_horizontal(partition, params, &dataset.split.test);
    bench::print_trace(dataset.name, result.trace);
    std::printf("# %s final: dz2=%.3e accuracy=%.4f\n", dataset.name.c_str(),
                result.trace.final_delta_sq(),
                result.trace.final_accuracy());
  }
  return 0;
}
