// Reproduces paper Fig. 4(a) + 4(e): convergence ||z^{t+1}-z^t||^2 and
// correct ratio per iteration for the LINEAR SVM on HORIZONTALLY
// partitioned data, across the three datasets.
//
// Besides the stdout trace, writes BENCH_fig4.json (working directory):
// per-dataset final convergence/accuracy plus per-phase duration medians
// from an observability session around each run.
#include <chrono>

#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"
#include "linalg/microkernel.h"
#include "obs/obs.h"
#include "obs/report.h"

using namespace ppml;

int main() {
  const core::AdmmParams params = bench::paper_params();
  bench::print_header("Fig. 4(a)/(e)", "linear SVM, horizontal partition",
                      params);

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "fig4_linear_horizontal");
  obs::JsonValue config = obs::JsonValue::object();
  config.set("learners", 4);
  config.set("c", params.c);
  config.set("rho", params.rho);
  config.set("max_iterations", params.max_iterations);
  report.set("config", std::move(config));
  obs::JsonValue datasets = obs::JsonValue::array();

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    const auto dataset = bench::make_bench_dataset(name);
    const auto partition =
        data::partition_horizontally(dataset.split.train, 4, 7);

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    core::LinearHorizontalResult result;
    {
      obs::Session session(&tracer, &metrics);
      result =
          core::train_linear_horizontal(partition, params, &dataset.split.test);
    }
    bench::print_trace(dataset.name, result.trace);
    std::printf("# %s final: dz2=%.3e accuracy=%.4f\n", dataset.name.c_str(),
                result.trace.final_delta_sq(),
                result.trace.final_accuracy());

    obs::JsonValue row = obs::JsonValue::object();
    row.set("dataset", dataset.name);
    row.set("iterations", result.run.iterations);
    row.set("converged", result.run.converged);
    row.set("final_delta_sq", result.trace.final_delta_sq());
    row.set("final_accuracy", result.trace.final_accuracy());
    row.set("phases", obs::span_stats_json(tracer));
    row.set("metrics", obs::metrics_json(metrics));
    datasets.push(std::move(row));
  }
  report.set("datasets", std::move(datasets));

  // HIGGS scale: the paper's headline n = 10^6, trained in-memory through
  // the matrix-free factored dual (a dense Q would need ~TBs). Reduced
  // iteration budget — the full 100-iteration traces live at the paper's
  // subset sizes above; this row pins that the data path handles the real n.
  {
    constexpr std::size_t kRows = 1'000'000;
    constexpr std::size_t kIterations = 3;
    core::AdmmParams scale_params = bench::paper_params(kIterations);
    scale_params.qp_max_sweeps = 30;  // fixed compute budget, deterministic

    const auto start = std::chrono::steady_clock::now();
    data::Dataset train = data::make_higgs_scale(7, kRows);
    const data::Dataset test =
        data::make_higgs_scale_rows(7, kRows, kRows + 20000);
    const auto partition = data::partition_horizontally(train, 4, 7);
    train = data::Dataset{};  // the shards hold the only copy now
    const auto result =
        core::train_linear_horizontal(partition, scale_params, &test);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    std::printf("# higgs_scale n=%zu: dz2=%.3e accuracy=%.4f wall=%.2fs\n",
                kRows, result.trace.final_delta_sq(),
                result.trace.final_accuracy(), wall);
    obs::JsonValue row = obs::JsonValue::object();
    row.set("dataset", "higgs_scale");
    row.set("train_rows", kRows);
    row.set("iterations", result.run.iterations);
    row.set("qp_max_sweeps", scale_params.qp_max_sweeps);
    row.set("final_delta_sq", result.trace.final_delta_sq());
    row.set("final_accuracy", result.trace.final_accuracy());
    row.set("wall_seconds", wall);
    row.set("peak_rss_bytes", obs::process_peak_rss_bytes());
    row.set("isa", linalg::active_isa_name());
    report.set("higgs_scale", std::move(row));
  }

  obs::write_json_file("BENCH_fig4.json", report);
  std::printf("# report written to BENCH_fig4.json\n");
  return 0;
}
