// Scalability study (paper abstract/§VI claim: "demonstrate its
// scalability"). Runs the linear-horizontal trainer as a full MapReduce
// job on the simulated cluster while sweeping the number of learners M and
// the training-set size N, and reports per-round communication (bytes,
// messages), simulated network time, task attempts and wall-clock time.
//
// The key shape the paper's design predicts: per-round traffic grows with
// M (and with M^2 for the literal exchanged-mask protocol) but is
// INDEPENDENT of N — the training data never moves (data locality).
// Besides the stdout tables, writes BENCH_scalability.json (working
// directory): the sweep rows plus per-phase span medians from one extra
// instrumented M=4 run. The sweeps themselves run WITHOUT an observability
// session, so the reported wall times exercise (and measure) the disabled
// instrumentation path.
#include <chrono>
#include <cmath>
#include <random>

#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "crypto/grouped_ring.h"
#include "core/mapreduce_adapter.h"
#include "data/partition.h"
#include "linalg/blas.h"
#include "linalg/microkernel.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "svm/kernel.h"

using namespace ppml;

namespace {

struct RunStats {
  double wall_seconds = 0.0;
  double network_seconds = 0.0;
  std::size_t bytes = 0;
  std::size_t messages = 0;
  double accuracy = 0.0;
};

RunStats run_job(const data::SplitDataset& split, std::size_t m,
                 crypto::MaskVariant variant, std::size_t iterations) {
  core::AdmmParams params = bench::paper_params(iterations);
  params.mask_variant = variant;

  const auto partition = data::partition_horizontally(split.train, m, 7);
  std::vector<mapreduce::Bytes> shards;
  for (const auto& shard : partition.shards)
    shards.push_back(core::serialize_horizontal_shard(shard));

  mapreduce::ClusterConfig config;
  config.num_nodes = m + 1;  // + dedicated reducer node
  mapreduce::Cluster cluster(config);

  const std::size_t k = split.train.features();
  core::AveragingCoordinator coordinator(k + 1);
  const core::AdmmParams captured = params;
  const core::LearnerFactory factory = [captured, m](
                                           mapreduce::BytesView payload,
                                           std::size_t) {
    return std::make_shared<core::LinearHorizontalLearner>(
        core::deserialize_horizontal_shard(payload), m, captured);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto result = core::run_consensus_on_cluster(
      cluster, shards, factory, coordinator, k + 1, /*reducer_node=*/m,
      params);
  const auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_seconds = std::chrono::duration<double>(stop - start).count();
  stats.network_seconds = result.job.simulated_network_seconds;
  const auto totals = cluster.network().totals();
  stats.bytes = totals.bytes;
  stats.messages = totals.messages;
  const svm::LinearModel model{coordinator.z(), coordinator.s()};
  stats.accuracy = svm::accuracy(model.predict_all(split.test.x), split.test.y);
  return stats;
}

/// One (M, topology) cell of the large-M masking sweep: R full secure-sum
/// rounds at the session level (contribute + reduce for every party, no
/// trainers — the QP cost would drown the crypto at M=512), with
/// crypto.masks_generated captured from a private metrics session.
struct TopologyStats {
  std::size_t group_size = 0;  ///< resolved (auto = ceil(sqrt(M)))
  std::size_t groups = 0;      ///< 1 under pairwise
  std::size_t edges = 0;       ///< mask edges |E|
  std::int64_t masks_generated = 0;  ///< total over all rounds
  std::int64_t masks_per_round = 0;
  std::size_t mask_stream_bytes = 0;  ///< masks * dim * 8 — the wire mask
                                      ///< traffic an exchanged-style
                                      ///< protocol would pay per job
  double setup_seconds = 0.0;  ///< DH pairwise key agreement
  double wall_seconds = 0.0;   ///< the masking + reduce rounds
  double max_abs_diff_vs_pairwise = 0.0;  ///< must be exactly 0
};

TopologyStats run_topology_cell(std::size_t m,
                                crypto::AggregationTopology topology,
                                std::size_t group_size, std::size_t rounds,
                                std::size_t dim,
                                const std::vector<double>* pairwise_sum,
                                std::vector<double>* sum_out) {
  // Deterministic per-party values: the decoded sums must agree bit-for-bit
  // across topologies, which is the whole point of the sweep's self-check.
  std::vector<std::vector<double>> values(m);
  for (std::size_t i = 0; i < m; ++i) {
    values[i].resize(dim);
    for (std::size_t j = 0; j < dim; ++j)
      values[i][j] = 0.5 * static_cast<double>(i + 1) -
                     0.03125 * static_cast<double>(j) *
                         (i % 2 == 0 ? 1.0 : -1.0);
  }

  crypto::SecureSumConfig config;
  config.num_parties = m;
  config.protocol_seed = 0xC0FFEE;
  config.topology = topology;
  config.group_size = group_size;

  TopologyStats stats;
  const bool grouped = topology == crypto::AggregationTopology::kGroupedRing;
  stats.group_size = grouped ? crypto::resolve_group_size(group_size, m) : m;
  stats.groups =
      grouped ? (m + stats.group_size - 1) / stats.group_size : 1;
  stats.edges = grouped ? crypto::grouped_mask_edges(m, group_size)
                        : m * (m - 1) / 2;

  const auto setup_start = std::chrono::steady_clock::now();
  crypto::SecureSumSession session(config);
  stats.setup_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - setup_start)
                            .count();

  std::vector<std::size_t> everyone(m);
  for (std::size_t i = 0; i < m; ++i) everyone[i] = i;
  const std::vector<crypto::SecureSumSession::Tensor> tensors(values.begin(),
                                                              values.end());

  obs::MetricsRegistry metrics;
  std::vector<double> sum;
  {
    obs::Session obs_session(nullptr, &metrics);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < rounds; ++round) {
      std::vector<std::vector<std::uint64_t>> wire(m);
      for (std::size_t i = 0; i < m; ++i)
        wire[i] = session.contribute(i, {&tensors[i], 1}, round, everyone);
      crypto::SecureSumSession::ReduceAudit audit;
      (void)session.reduce_average(round, everyone, everyone, wire, &audit);
      sum = std::move(audit.decoded_sum);
    }
    stats.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  }
  stats.masks_generated = metrics.counter("crypto.masks_generated");
  stats.masks_per_round =
      stats.masks_generated / static_cast<std::int64_t>(rounds);
  stats.mask_stream_bytes =
      static_cast<std::size_t>(stats.masks_generated) * dim * 8;
  if (pairwise_sum != nullptr)
    for (std::size_t j = 0; j < dim; ++j)
      stats.max_abs_diff_vs_pairwise = std::max(
          stats.max_abs_diff_vs_pairwise, std::abs(sum[j] - (*pairwise_sum)[j]));
  if (sum_out != nullptr) *sum_out = std::move(sum);
  return stats;
}

obs::JsonValue topology_row(std::size_t m, const char* topology,
                            const TopologyStats& s) {
  obs::JsonValue row = obs::JsonValue::object();
  row.set("learners", m);
  row.set("topology", topology);
  row.set("group_size", s.group_size);
  row.set("groups", s.groups);
  row.set("edges", s.edges);
  row.set("masks_generated", s.masks_generated);
  row.set("masks_per_round", s.masks_per_round);
  row.set("mask_stream_bytes", s.mask_stream_bytes);
  row.set("setup_seconds", s.setup_seconds);
  row.set("wall_seconds", s.wall_seconds);
  row.set("max_abs_diff_vs_pairwise", s.max_abs_diff_vs_pairwise);
  return row;
}

/// One ISA cell of the microkernel speedup head-to-head: the blocked
/// gemm_nt plus an RBF gram — the two dense primitives the trainer and
/// kernel caches ride through.
struct SimdStats {
  double scalar_seconds = 0.0;
  double dispatch_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_diff_vs_scalar = 0.0;  ///< must be exactly 0 (bit-identity)
  std::string isa;                      ///< the dispatched level
};

SimdStats run_simd_cell() {
  constexpr std::size_t kRows = 768;
  constexpr std::size_t kCols = 256;
  constexpr std::size_t kReps = 4;
  std::mt19937_64 rng(0x51D0u);
  linalg::Matrix a(kRows, kCols);
  linalg::Matrix b(kRows, kCols);
  std::normal_distribution<double> normal(0.0, 1.0);
  for (double& v : a.data()) v = normal(rng);
  for (double& v : b.data()) v = normal(rng);
  const svm::Kernel rbf = svm::Kernel::rbf(1.0 / static_cast<double>(kCols));

  linalg::Matrix gemm_out;
  linalg::Matrix gram_out;
  const auto run_once = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kReps; ++rep)
      gemm_out = linalg::gemm_nt(a, b);
    gram_out = svm::gram(rbf, a);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  SimdStats stats;
  linalg::force_isa(linalg::Isa::kScalar);
  stats.scalar_seconds = run_once();
  const linalg::Matrix scalar_gemm = gemm_out;
  const linalg::Matrix scalar_gram = gram_out;

  linalg::clear_forced_isa();  // back to the cpuid-probed level
  stats.dispatch_seconds = run_once();
  stats.isa = linalg::active_isa_name();
  stats.speedup = stats.dispatch_seconds > 0.0
                      ? stats.scalar_seconds / stats.dispatch_seconds
                      : 1.0;
  for (std::size_t i = 0; i < gemm_out.size(); ++i)
    stats.max_abs_diff_vs_scalar =
        std::max(stats.max_abs_diff_vs_scalar,
                 std::abs(gemm_out.data()[i] - scalar_gemm.data()[i]));
  for (std::size_t i = 0; i < gram_out.size(); ++i)
    stats.max_abs_diff_vs_scalar =
        std::max(stats.max_abs_diff_vs_scalar,
                 std::abs(gram_out.data()[i] - scalar_gram.data()[i]));
  return stats;
}

/// The HIGGS-scale row: n = 10^6 synthetic-HIGGS rows as a full cluster job
/// with a blockstore budget far below the serialized shards, so the map
/// phase streams spilled partitions off mmap. The matrix-free factored dual
/// solver keeps the QP O(nk) — a dense Q at this n would need ~TBs.
struct HiggsScaleStats {
  RunStats run;
  mapreduce::SpillStats spill;
  std::size_t peak_rss_bytes = 0;
  std::string isa;
};

HiggsScaleStats run_higgs_scale(std::size_t rows, std::size_t learners,
                                std::size_t iterations,
                                std::size_t qp_sweeps,
                                std::size_t budget_bytes) {
  core::AdmmParams params = bench::paper_params(iterations);
  params.qp_max_sweeps = qp_sweeps;  // fixed compute budget, deterministic

  // Counter-seeded generator: each shard slice is generated independently
  // and serialized immediately — the full training set never has to sit in
  // this address space at once.
  std::vector<mapreduce::Bytes> shards;
  const std::size_t per = rows / learners;
  for (std::size_t m = 0; m < learners; ++m) {
    data::Dataset shard = data::make_higgs_scale_rows(
        7, m * per, m + 1 == learners ? rows : (m + 1) * per);
    shards.push_back(core::serialize_horizontal_shard(shard));
  }
  const data::Dataset test =
      data::make_higgs_scale_rows(7, rows, rows + 20000);

  mapreduce::ClusterConfig config;
  config.num_nodes = learners + 1;
  config.blockstore_budget_bytes = budget_bytes;
  mapreduce::Cluster cluster(config);

  constexpr std::size_t kFeatures = 28;
  core::AveragingCoordinator coordinator(kFeatures + 1);
  const core::AdmmParams captured = params;
  const core::LearnerFactory factory = [captured, learners](
                                           mapreduce::BytesView payload,
                                           std::size_t) {
    return std::make_shared<core::LinearHorizontalLearner>(
        core::deserialize_horizontal_shard(payload), learners, captured);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto result = core::run_consensus_on_cluster(
      cluster, shards, factory, coordinator, kFeatures + 1,
      /*reducer_node=*/learners, params);
  const auto stop = std::chrono::steady_clock::now();

  HiggsScaleStats out;
  out.run.wall_seconds = std::chrono::duration<double>(stop - start).count();
  out.run.network_seconds = result.job.simulated_network_seconds;
  const auto totals = cluster.network().totals();
  out.run.bytes = totals.bytes;
  out.run.messages = totals.messages;
  const svm::LinearModel model{coordinator.z(), coordinator.s()};
  out.run.accuracy =
      svm::accuracy(model.predict_all(test.x), test.y);
  out.spill = cluster.storage().spill_stats();
  out.peak_rss_bytes = obs::process_peak_rss_bytes();
  out.isa = linalg::active_isa_name();
  return out;
}

obs::JsonValue stats_row(std::size_t sweep_value, const char* key,
                         const RunStats& s) {
  obs::JsonValue row = obs::JsonValue::object();
  row.set(key, sweep_value);
  row.set("wall_seconds", s.wall_seconds);
  row.set("network_seconds", s.network_seconds);
  row.set("bytes", s.bytes);
  row.set("messages", s.messages);
  row.set("accuracy", s.accuracy);
  return row;
}

}  // namespace

int main() {
  constexpr std::size_t kIterations = 30;
  std::printf("# Scalability: linear-horizontal on the simulated cluster\n");
  std::printf("# %zu iterations; traffic is the full job total\n",
              kIterations);

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "scalability");
  report.set("iterations", kIterations);

  std::printf("\n## Sweep M (learners), cancer_like, seeded-mask protocol\n");
  std::printf("%4s %10s %10s %12s %12s %9s\n", "M", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  const auto cancer = bench::make_bench_dataset("cancer");
  obs::JsonValue sweep_m = obs::JsonValue::array();
  for (std::size_t m : {2, 4, 8, 16}) {
    const RunStats s = run_job(cancer.split, m,
                               crypto::MaskVariant::kSeededMasks, kIterations);
    std::printf("%4zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", m, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_m.push(stats_row(m, "learners", s));
  }
  report.set("sweep_learners_seeded", std::move(sweep_m));

  std::printf(
      "\n## Same sweep with the literal exchanged-mask protocol (O(M^2) "
      "mask traffic per round)\n");
  std::printf("%4s %10s %10s %12s %12s %9s\n", "M", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  obs::JsonValue sweep_m_exchanged = obs::JsonValue::array();
  for (std::size_t m : {2, 4, 8, 16}) {
    const RunStats s = run_job(
        cancer.split, m, crypto::MaskVariant::kExchangedMasks, kIterations);
    std::printf("%4zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", m, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_m_exchanged.push(stats_row(m, "learners", s));
  }
  report.set("sweep_learners_exchanged", std::move(sweep_m_exchanged));

  std::printf(
      "\n## Sweep N (training rows), higgs_like, M=4: traffic must stay "
      "flat (data locality — only results move)\n");
  std::printf("%6s %10s %10s %12s %12s %9s\n", "N", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  obs::JsonValue sweep_n = obs::JsonValue::array();
  for (std::size_t n : {1000, 2000, 4000, 8000}) {
    const auto dataset = bench::make_bench_dataset("higgs", n);
    const RunStats s = run_job(dataset.split, 4,
                               crypto::MaskVariant::kSeededMasks, kIterations);
    std::printf("%6zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", n, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_n.push(stats_row(n, "train_rows", s));
  }
  report.set("sweep_rows_seeded", std::move(sweep_n));

  // Large-M topology sweep: where the O(M^2) pairwise masking wall bites
  // and where the grouped-ring topology breaks it. Session-level secure-sum
  // rounds (no trainers): the sums are asserted bit-identical across
  // topologies, the mask counters are exact and deterministic, and only the
  // timings carry noise. grouped-auto uses groups of ceil(sqrt(M)) (~M^1.5
  // masks per round); grouped-g8 pins the group size to 8, making the mask
  // count strictly linear in M.
  {
    constexpr std::size_t kRounds = 3;
    constexpr std::size_t kDim = 32;
    std::printf(
        "\n## Topology sweep: per-round mask streams, pairwise vs "
        "grouped-ring (%zu secure-sum rounds, dim=%zu)\n",
        kRounds, kDim);
    std::printf("%5s %-13s %6s %8s %12s %12s %10s %10s\n", "M", "topology",
                "groups", "edges", "masks/round", "mask_bytes", "setup_s",
                "wall_s");
    obs::JsonValue sweep_topology = obs::JsonValue::array();
    for (std::size_t m : {64, 128, 256, 512}) {
      std::vector<double> pairwise_sum;
      const auto emit = [&](const char* label, const TopologyStats& s) {
        std::printf("%5zu %-13s %6zu %8zu %12lld %12zu %10.4f %10.4f\n", m,
                    label, s.groups, s.edges,
                    static_cast<long long>(s.masks_per_round),
                    s.mask_stream_bytes, s.setup_seconds, s.wall_seconds);
        sweep_topology.push(topology_row(m, label, s));
        if (s.max_abs_diff_vs_pairwise != 0.0) {
          std::fprintf(stderr,
                       "FATAL: %s sum differs from pairwise at M=%zu\n",
                       label, m);
          std::exit(1);
        }
      };
      emit("pairwise",
           run_topology_cell(m, crypto::AggregationTopology::kPairwise, 0,
                             kRounds, kDim, nullptr, &pairwise_sum));
      emit("grouped-auto",
           run_topology_cell(m, crypto::AggregationTopology::kGroupedRing, 0,
                             kRounds, kDim, &pairwise_sum, nullptr));
      emit("grouped-g8",
           run_topology_cell(m, crypto::AggregationTopology::kGroupedRing, 8,
                             kRounds, kDim, &pairwise_sum, nullptr));
    }
    report.set("sweep_topology", std::move(sweep_topology));
  }

  // SIMD microkernel head-to-head: scalar-pinned vs runtime-dispatched on
  // the dense primitives. Outputs are asserted bit-identical — only the
  // wall time may move.
  {
    std::printf("\n## SIMD microkernels: scalar vs dispatched (gemm_nt + RBF "
                "gram, bit-identity enforced)\n");
    const SimdStats s = run_simd_cell();
    std::printf("%-8s %12s %14s %9s %14s\n", "isa", "scalar_s", "dispatch_s",
                "speedup", "max_abs_diff");
    std::printf("%-8s %12.4f %14.4f %8.2fx %14.1e\n", s.isa.c_str(),
                s.scalar_seconds, s.dispatch_seconds, s.speedup,
                s.max_abs_diff_vs_scalar);
    if (s.max_abs_diff_vs_scalar != 0.0) {
      std::fprintf(stderr,
                   "FATAL: dispatched microkernels differ from scalar\n");
      return 1;
    }
    obs::JsonValue simd = obs::JsonValue::object();
    simd.set("isa", s.isa);
    simd.set("scalar_seconds", s.scalar_seconds);
    simd.set("dispatch_seconds", s.dispatch_seconds);
    simd.set("speedup", s.speedup);
    simd.set("max_abs_diff_vs_scalar", s.max_abs_diff_vs_scalar);
    report.set("simd", std::move(simd));
  }

  // HIGGS scale: the paper's headline n. One n=10^6 cluster job whose
  // shards are generated slice-by-slice, spilled to disk by a blockstore
  // budget far below their serialized size, and solved matrix-free.
  {
    constexpr std::size_t kHiggsRows = 1'000'000;
    constexpr std::size_t kHiggsLearners = 4;
    constexpr std::size_t kHiggsIterations = 3;
    constexpr std::size_t kHiggsQpSweeps = 30;
    constexpr std::size_t kHiggsBudget = 64ull << 20;  // 64 MiB
    std::printf(
        "\n## HIGGS scale: n=%zu, M=%zu, %zu iterations (out-of-core "
        "blockstore, %zu MiB budget, factored dual)\n",
        kHiggsRows, kHiggsLearners, kHiggsIterations, kHiggsBudget >> 20);
    const HiggsScaleStats s =
        run_higgs_scale(kHiggsRows, kHiggsLearners, kHiggsIterations,
                        kHiggsQpSweeps, kHiggsBudget);
    std::printf("%8s %10s %9s %12s %12s %10s %12s\n", "N", "wall_s",
                "accuracy", "spill_blks", "spill_bytes", "mmap_reads",
                "peak_rss");
    std::printf("%8zu %10.3f %8.1f%% %12zu %12zu %10zu %9zu MB\n", kHiggsRows,
                s.run.wall_seconds, s.run.accuracy * 100.0,
                s.spill.spilled_blocks, s.spill.spilled_bytes,
                s.spill.mapped_reads, s.peak_rss_bytes >> 20);
    obs::JsonValue row = obs::JsonValue::object();
    row.set("train_rows", kHiggsRows);
    row.set("learners", kHiggsLearners);
    row.set("iterations", kHiggsIterations);
    row.set("qp_max_sweeps", kHiggsQpSweeps);
    row.set("blockstore_budget_bytes", kHiggsBudget);
    row.set("wall_seconds", s.run.wall_seconds);
    row.set("network_seconds", s.run.network_seconds);
    row.set("bytes", s.run.bytes);
    row.set("messages", s.run.messages);
    row.set("accuracy", s.run.accuracy);
    row.set("spill_blocks", s.spill.spilled_blocks);
    row.set("spill_bytes", s.spill.spilled_bytes);
    row.set("spill_mapped_reads", s.spill.mapped_reads);
    row.set("peak_rss_bytes", s.peak_rss_bytes);
    row.set("isa", s.isa);
    report.set("higgs_scale", std::move(row));
  }

  // One extra instrumented run for per-phase medians. Kept out of the
  // sweeps above so their wall times keep measuring the disabled path.
  {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    {
      obs::Session session(&tracer, &metrics);
      run_job(cancer.split, 4, crypto::MaskVariant::kSeededMasks, kIterations);
    }
    report.set("phases_m4_seeded", obs::span_stats_json(tracer));
    report.set("metrics_m4_seeded", obs::metrics_json(metrics));
  }

  obs::write_json_file("BENCH_scalability.json", report);
  std::printf("\n# report written to BENCH_scalability.json\n");
  return 0;
}
