// Scalability study (paper abstract/§VI claim: "demonstrate its
// scalability"). Runs the linear-horizontal trainer as a full MapReduce
// job on the simulated cluster while sweeping the number of learners M and
// the training-set size N, and reports per-round communication (bytes,
// messages), simulated network time, task attempts and wall-clock time.
//
// The key shape the paper's design predicts: per-round traffic grows with
// M (and with M^2 for the literal exchanged-mask protocol) but is
// INDEPENDENT of N — the training data never moves (data locality).
// Besides the stdout tables, writes BENCH_scalability.json (working
// directory): the sweep rows plus per-phase span medians from one extra
// instrumented M=4 run. The sweeps themselves run WITHOUT an observability
// session, so the reported wall times exercise (and measure) the disabled
// instrumentation path.
#include <chrono>

#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "core/mapreduce_adapter.h"
#include "data/partition.h"
#include "obs/obs.h"
#include "obs/report.h"

using namespace ppml;

namespace {

struct RunStats {
  double wall_seconds = 0.0;
  double network_seconds = 0.0;
  std::size_t bytes = 0;
  std::size_t messages = 0;
  double accuracy = 0.0;
};

RunStats run_job(const data::SplitDataset& split, std::size_t m,
                 crypto::MaskVariant variant, std::size_t iterations) {
  core::AdmmParams params = bench::paper_params(iterations);
  params.mask_variant = variant;

  const auto partition = data::partition_horizontally(split.train, m, 7);
  std::vector<mapreduce::Bytes> shards;
  for (const auto& shard : partition.shards)
    shards.push_back(core::serialize_horizontal_shard(shard));

  mapreduce::ClusterConfig config;
  config.num_nodes = m + 1;  // + dedicated reducer node
  mapreduce::Cluster cluster(config);

  const std::size_t k = split.train.features();
  core::AveragingCoordinator coordinator(k + 1);
  const core::AdmmParams captured = params;
  const core::LearnerFactory factory = [captured, m](
                                           const mapreduce::Bytes& payload,
                                           std::size_t) {
    return std::make_shared<core::LinearHorizontalLearner>(
        core::deserialize_horizontal_shard(payload), m, captured);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto result = core::run_consensus_on_cluster(
      cluster, shards, factory, coordinator, k + 1, /*reducer_node=*/m,
      params);
  const auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_seconds = std::chrono::duration<double>(stop - start).count();
  stats.network_seconds = result.job.simulated_network_seconds;
  const auto totals = cluster.network().totals();
  stats.bytes = totals.bytes;
  stats.messages = totals.messages;
  const svm::LinearModel model{coordinator.z(), coordinator.s()};
  stats.accuracy = svm::accuracy(model.predict_all(split.test.x), split.test.y);
  return stats;
}

obs::JsonValue stats_row(std::size_t sweep_value, const char* key,
                         const RunStats& s) {
  obs::JsonValue row = obs::JsonValue::object();
  row.set(key, sweep_value);
  row.set("wall_seconds", s.wall_seconds);
  row.set("network_seconds", s.network_seconds);
  row.set("bytes", s.bytes);
  row.set("messages", s.messages);
  row.set("accuracy", s.accuracy);
  return row;
}

}  // namespace

int main() {
  constexpr std::size_t kIterations = 30;
  std::printf("# Scalability: linear-horizontal on the simulated cluster\n");
  std::printf("# %zu iterations; traffic is the full job total\n",
              kIterations);

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "scalability");
  report.set("iterations", kIterations);

  std::printf("\n## Sweep M (learners), cancer_like, seeded-mask protocol\n");
  std::printf("%4s %10s %10s %12s %12s %9s\n", "M", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  const auto cancer = bench::make_bench_dataset("cancer");
  obs::JsonValue sweep_m = obs::JsonValue::array();
  for (std::size_t m : {2, 4, 8, 16}) {
    const RunStats s = run_job(cancer.split, m,
                               crypto::MaskVariant::kSeededMasks, kIterations);
    std::printf("%4zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", m, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_m.push(stats_row(m, "learners", s));
  }
  report.set("sweep_learners_seeded", std::move(sweep_m));

  std::printf(
      "\n## Same sweep with the literal exchanged-mask protocol (O(M^2) "
      "mask traffic per round)\n");
  std::printf("%4s %10s %10s %12s %12s %9s\n", "M", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  obs::JsonValue sweep_m_exchanged = obs::JsonValue::array();
  for (std::size_t m : {2, 4, 8, 16}) {
    const RunStats s = run_job(
        cancer.split, m, crypto::MaskVariant::kExchangedMasks, kIterations);
    std::printf("%4zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", m, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_m_exchanged.push(stats_row(m, "learners", s));
  }
  report.set("sweep_learners_exchanged", std::move(sweep_m_exchanged));

  std::printf(
      "\n## Sweep N (training rows), higgs_like, M=4: traffic must stay "
      "flat (data locality — only results move)\n");
  std::printf("%6s %10s %10s %12s %12s %9s\n", "N", "wall_s", "net_s",
              "bytes", "messages", "accuracy");
  obs::JsonValue sweep_n = obs::JsonValue::array();
  for (std::size_t n : {1000, 2000, 4000, 8000}) {
    const auto dataset = bench::make_bench_dataset("higgs", n);
    const RunStats s = run_job(dataset.split, 4,
                               crypto::MaskVariant::kSeededMasks, kIterations);
    std::printf("%6zu %10.3f %10.5f %12zu %12zu %8.1f%%\n", n, s.wall_seconds,
                s.network_seconds, s.bytes, s.messages, s.accuracy * 100.0);
    sweep_n.push(stats_row(n, "train_rows", s));
  }
  report.set("sweep_rows_seeded", std::move(sweep_n));

  // One extra instrumented run for per-phase medians. Kept out of the
  // sweeps above so their wall times keep measuring the disabled path.
  {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    {
      obs::Session session(&tracer, &metrics);
      run_job(cancer.split, 4, crypto::MaskVariant::kSeededMasks, kIterations);
    }
    report.set("phases_m4_seeded", obs::span_stats_json(tracer));
    report.set("metrics_m4_seeded", obs::metrics_json(metrics));
  }

  obs::write_json_file("BENCH_scalability.json", report);
  std::printf("\n# report written to BENCH_scalability.json\n");
  return 0;
}
