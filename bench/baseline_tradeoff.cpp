// Ablation X5: the privacy/utility trade-off of the perturbation-family
// baselines the paper argues against (§II), contrasted with our scheme.
//
// Random-kernel: utility degrades as the public reference shrinks.
// epsilon-DP output perturbation: utility collapses as epsilon shrinks.
// The paper's protocol: exact consensus — accuracy does not depend on a
// privacy knob (privacy comes from masking, which cancels exactly).
#include "baselines/dp_output_perturbation.h"
#include "baselines/random_kernel.h"
#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto& split = dataset.split;

  std::printf("# Privacy/utility trade-off, cancer_like (50/50 split)\n");

  std::printf("\n## Random-kernel baseline (Mangasarian): reference rows r\n");
  std::printf("%6s %10s\n", "r", "accuracy");
  for (std::size_t r : {1, 2, 5, 10, 25, 50}) {
    baselines::RandomKernelOptions options;
    options.reference_rows = r;
    options.kernel = svm::Kernel::rbf(1.0 / 9.0);
    options.train.c = 50.0;
    const auto model = baselines::train_random_kernel(split.train, options);
    std::printf("%6zu %9.1f%%\n", r,
                svm::accuracy(model.predict_all(split.test.x), split.test.y) *
                    100.0);
  }

  std::printf("\n## epsilon-DP output perturbation (Chaudhuri–Monteleoni)\n");
  std::printf("%10s %10s\n", "epsilon", "accuracy");
  for (double epsilon : {0.001, 0.01, 0.1, 1.0, 10.0, 1000.0}) {
    baselines::DpOptions options;
    options.epsilon = epsilon;
    options.seed = 11;
    const auto model = baselines::train_dp_linear_svm(split.train, options);
    std::printf("%10.3f %9.1f%%\n", epsilon,
                svm::accuracy(model.predict_all(split.test.x), split.test.y) *
                    100.0);
  }

  std::printf("\n## This paper's scheme (secure summation — no utility knob)\n");
  const auto partition = data::partition_horizontally(split.train, 4, 7);
  const auto result = core::train_linear_horizontal(
      partition, bench::paper_params(60), &split.test);
  std::printf("accuracy %.1f%% (exact consensus; masks cancel exactly)\n",
              result.trace.final_accuracy() * 100.0);
  return 0;
}
