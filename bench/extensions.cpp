// Extension experiments beyond the paper's evaluation:
//   (1) privacy-preserving one-vs-rest multiclass on the real-world shape
//       of the OCR task (10 digit classes), and
//   (2) the distributed feature-selection protocol the paper names as
//       future work, measured as a preprocessing step for training.
#include "bench/bench_common.h"
#include "core/feature_selection.h"
#include "core/multiclass_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  // ---- (1) multiclass OCR ----
  std::printf("# Extension 1: privacy-preserving 10-class OCR (one-vs-rest, "
              "linear horizontal, M=4)\n");
  const auto digits = svm::make_digits_like(10, 2000, 2);
  const auto [train, test] = digits.split(0.5, 7);
  const auto mc_partition = core::partition_multiclass_horizontally(train, 4, 7);

  core::AdmmParams params = bench::paper_params(40);
  params.c = 10.0;
  const auto distributed =
      core::train_multiclass_linear_horizontal(mc_partition, params, &test);

  svm::TrainOptions central;
  central.c = 10.0;
  const auto reference = svm::train_one_vs_rest_linear(train, central);
  std::printf("centralized OvR accuracy : %.1f%%\n",
              svm::multiclass_accuracy(reference.predict_all(test.x),
                                       test.y) *
                  100.0);
  std::printf("distributed OvR accuracy : %.1f%% (10 consensus runs)\n",
              distributed.test_accuracy * 100.0);

  // ---- (2) distributed feature selection ----
  std::printf("\n# Extension 2: secure Fisher-score feature selection "
              "(paper's future work), ocr_like\n");
  auto ocr = bench::make_bench_dataset("ocr", 2400);
  const auto partition = data::partition_horizontally(ocr.split.train, 4, 7);
  const auto selection =
      core::secure_fisher_scores(partition, core::AdmmParams{});
  std::printf("protocol: %zu round, %zu-dim statistics vector per learner\n",
              selection.protocol_rounds, selection.contribution_dim);

  std::printf("%8s %10s\n", "keep", "accuracy");
  for (std::size_t keep : {4, 8, 16, 32, 64}) {
    const auto [reduced, kept] =
        core::select_top_features(partition, selection, keep);
    core::AdmmParams train_params = bench::paper_params(40);
    const auto result =
        core::train_linear_horizontal(reduced, train_params, nullptr);
    const data::Dataset projected_test = ocr.split.test.feature_subset(kept);
    const double acc = svm::accuracy(
        result.model.predict_all(projected_test.x), projected_test.y);
    std::printf("%8zu %9.1f%%\n", keep, acc * 100.0);
  }
  return 0;
}
