// Extension experiment: the framework beyond SVMs.
//
// The paper's framework (decompose into Map, secure-average in Reduce) is
// model-agnostic; this bench trains three privacy-preserving learners —
// hinge SVM, logistic regression, ridge (least-squares) — over the same
// horizontal partitions and compares accuracy and convergence profile.
#include "bench/bench_common.h"
#include "core/glm_horizontal.h"
#include "core/glm_vertical.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  std::printf("# Privacy-preserving linear learners, horizontal M=4, "
              "60 rounds\n");
  std::printf("%-8s %10s %12s %10s\n", "dataset", "svm", "logistic", "ridge");

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    const std::size_t cap = name == "higgs" ? 6000 : 0;
    const auto dataset = bench::make_bench_dataset(name, cap);
    const auto partition =
        data::partition_horizontally(dataset.split.train, 4, 7);

    const auto svm_result = core::train_linear_horizontal(
        partition, bench::paper_params(60), &dataset.split.test);

    core::GlmParams glm;
    glm.max_iterations = 60;
    const auto logistic =
        core::train_logistic_horizontal(partition, glm, &dataset.split.test);
    const auto ridge =
        core::train_ridge_horizontal(partition, glm, &dataset.split.test);

    std::printf("%-8s %9.1f%% %11.1f%% %9.1f%%\n", name.c_str(),
                svm_result.trace.final_accuracy() * 100.0,
                logistic.trace.final_accuracy() * 100.0,
                ridge.trace.final_accuracy() * 100.0);
  }

  std::printf("\n# Vertical variants (cancer_like, M=4, rho=10, 60 rounds)\n");
  {
    const auto cancer = bench::make_bench_dataset("cancer");
    const auto vp = data::partition_vertically(cancer.split.train, 4, 7);
    core::GlmParams vparams;
    vparams.max_iterations = 60;
    vparams.rho = 10.0;
    const auto vridge =
        core::train_ridge_vertical(vp, vparams, &cancer.split.test);
    const auto vlogistic =
        core::train_logistic_vertical(vp, vparams, &cancer.split.test);
    std::printf("ridge-vertical     %5.1f%%\n",
                vridge.trace.final_accuracy() * 100.0);
    std::printf("logistic-vertical  %5.1f%%\n",
                vlogistic.trace.final_accuracy() * 100.0);
  }

  std::printf("\n# Convergence profile (cancer_like): ||dz||^2 by round\n");
  std::printf("%6s %12s %12s %12s\n", "round", "svm", "logistic", "ridge");
  const auto dataset = bench::make_bench_dataset("cancer");
  const auto partition =
      data::partition_horizontally(dataset.split.train, 4, 7);
  const auto svm_result = core::train_linear_horizontal(
      partition, bench::paper_params(60), nullptr);
  core::GlmParams glm;
  glm.max_iterations = 60;
  const auto logistic = core::train_logistic_horizontal(partition, glm);
  const auto ridge = core::train_ridge_horizontal(partition, glm);
  for (std::size_t r : {0ul, 4ul, 9ul, 19ul, 39ul, 59ul}) {
    std::printf("%6zu %12.3e %12.3e %12.3e\n", r + 1,
                svm_result.trace.records[r].z_delta_sq,
                logistic.trace.records[r].z_delta_sq,
                ridge.trace.records[r].z_delta_sq);
  }
  return 0;
}
