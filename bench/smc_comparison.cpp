// Head-to-head with the SMC-based prior art (paper §II refs [28]/[31]):
// secure-dot-product kernel construction + central solve, versus this
// paper's data-local ADMM + secure summation.
//
// The paper's claim: SMC approaches pay per-kernel-entry protocol costs
// that scale O(N^2) in the data size, while its own design moves only
// O(M * dim) masked model bytes per round regardless of N. This bench
// measures both pipelines end-to-end on the same tasks.
#include <chrono>

#include "baselines/smc_svm.h"
#include "bench/bench_common.h"
#include "core/cluster_trainers.h"
#include "data/partition.h"

using namespace ppml;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  std::printf("# SMC baseline (secure-dot kernel + central solve) vs this "
              "paper's scheme\n");
  std::printf("# cancer_like, M = 4 learners; paper scheme runs 30 rounds on "
              "the simulated cluster\n");
  std::printf("%6s | %12s %10s %9s | %12s %10s %9s\n", "N", "smc_bytes",
              "smc_wall_s", "smc_acc", "ppml_bytes", "ppml_wall_s",
              "ppml_acc");

  for (std::size_t n : {64, 128, 256}) {
    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    const data::Dataset subset = dataset.split.train.subset(rows);
    const auto partition = data::partition_horizontally(subset, 4, 7);

    // --- SMC pipeline ---
    baselines::SmcSvmOptions smc_options;
    smc_options.train.c = 10.0;
    auto start = std::chrono::steady_clock::now();
    const auto smc = baselines::train_smc_linear_svm(partition, smc_options);
    const double smc_wall = seconds_since(start);
    const double smc_acc = smc.accuracy_on(dataset.split.test);

    // --- this paper's pipeline on the simulated cluster ---
    core::AdmmParams params = bench::paper_params(30);
    params.c = 10.0;
    mapreduce::ClusterConfig config;
    config.num_nodes = 5;
    mapreduce::Cluster cluster(config);
    start = std::chrono::steady_clock::now();
    const auto ours = core::train_linear_horizontal_on_cluster(
        cluster, partition, params);
    const double our_wall = seconds_since(start);
    const double our_acc = svm::accuracy(
        ours.model.predict_all(dataset.split.test.x), dataset.split.test.y);
    const auto totals = cluster.network().totals();

    std::printf("%6zu | %12zu %10.3f %8.1f%% | %12zu %10.3f %8.1f%%\n", n,
                smc.protocol.total_bytes(), smc_wall, smc_acc * 100.0,
                totals.bytes, our_wall, our_acc * 100.0);
  }
  std::printf(
      "\n# Note: SMC bytes grow ~O(N^2) (one Du–Atallah run per cross-\n"
      "# learner kernel entry); the paper's scheme is flat in N. The SMC\n"
      "# pipeline additionally RELEASES the Gram matrix, which enables the\n"
      "# paper's §V reconstruction attack (tests/secure_dot_test.cpp).\n");
  return 0;
}
