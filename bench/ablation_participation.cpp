// Ablation X10: partial participation (sampled consensus rounds).
//
// Each round only K of M learners compute and enter the secure average
// (randomized block-coordinate ADMM; masks are generated per round against
// the actual participant set, so the protocol stays exact). Trade-off:
// fewer per-round local solves and contributions vs slower consensus.
#include "bench/bench_common.h"
#include "core/linear_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const auto dataset = bench::make_bench_dataset("cancer");
  constexpr std::size_t kLearners = 8;
  const auto partition =
      data::partition_horizontally(dataset.split.train, kLearners, 7);
  core::AdmmParams params = bench::paper_params(80);

  std::printf("# Partial participation: K of %zu learners per round "
              "(linear horizontal, 80 rounds)\n", kLearners);
  std::printf("%4s %10s %14s\n", "K", "accuracy", "local_solves");

  for (std::size_t k : {2ul, 4ul, 6ul, 8ul}) {
    std::vector<std::shared_ptr<core::ConsensusLearner>> learners;
    for (const auto& shard : partition.shards)
      learners.push_back(std::make_shared<core::LinearHorizontalLearner>(
          shard, kLearners, params));
    core::AveragingCoordinator coordinator(
        dataset.split.train.features() + 1);

    if (k == kLearners) {
      core::run_consensus_in_memory(learners, coordinator, params);
    } else {
      core::run_consensus_partial_participation(learners, coordinator,
                                                params, k, /*seed=*/5);
    }
    const svm::LinearModel model{coordinator.z(), coordinator.s()};
    const double accuracy = svm::accuracy(
        model.predict_all(dataset.split.test.x), dataset.split.test.y);
    std::printf("%4zu %9.1f%% %14zu\n", k, accuracy * 100.0,
                k * params.max_iterations);
  }
  std::printf("# Half the per-round work costs little accuracy — the\n"
              "# consensus average is robust to sampled rounds.\n");
  return 0;
}
