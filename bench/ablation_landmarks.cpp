// Ablation X2: landmark count l vs kernel-horizontal quality.
//
// Paper §IV-B: "because we cannot afford p vectors, we only use l vectors
// to approximate w~" and claims "reasonably good performance". This sweep
// quantifies the approximation: accuracy and consensus residual vs l.
#include <cmath>

#include "bench/bench_common.h"
#include "core/kernel_horizontal.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  std::printf("# Ablation: landmarks l vs accuracy (kernel horizontal)\n");
  std::printf("%-8s %5s %10s %12s\n", "dataset", "l", "accuracy",
              "final_dz2");

  for (const std::string& name : {"cancer", "ocr"}) {
    const std::size_t cap = name == "ocr" ? 2400 : 0;
    const auto dataset = bench::make_bench_dataset(name, cap);
    const auto partition =
        data::partition_horizontally(dataset.split.train, 4, 7);
    const double k = static_cast<double>(dataset.split.train.features());
    for (std::size_t l : {5, 10, 20, 40, 80, 160}) {
      core::AdmmParams params = bench::paper_params(60);
      params.landmarks = l;
      const auto result = core::train_kernel_horizontal(
          partition, svm::Kernel::rbf(1.0 / k), params, &dataset.split.test);
      std::printf("%-8s %5zu %9.1f%% %12.3e\n", name.c_str(), l,
                  result.trace.final_accuracy() * 100.0,
                  result.trace.final_delta_sq());
    }
  }
  // Where the approximation really bites: NON-IID shards. Give each
  // learner one angular sector of the rings — no learner can solve the
  // task locally, so the quality of the landmark consensus decides how
  // much of the other sectors' structure reaches learner 0's classifier.
  std::printf("\n# two_rings, non-IID sector shards (RBF gamma=0.5, rho=1, "
              "C=10)\n");
  std::printf("%-8s %5s %10s\n", "dataset", "l", "accuracy");
  auto rings = data::train_test_split(
      data::make_two_rings(800, 1.0, 3.0, 0.1, 3), 0.5, 9);
  // Sector partition: learner m gets the points with angle in its quadrant.
  data::HorizontalPartition sectors;
  sectors.shards.assign(4, {});
  for (auto& shard : sectors.shards) {
    shard.x.resize(0, 2);
    shard.name = "sector";
  }
  std::vector<std::vector<std::size_t>> sector_rows(4);
  for (std::size_t i = 0; i < rings.train.size(); ++i) {
    const double angle =
        std::atan2(rings.train.x(i, 1), rings.train.x(i, 0));
    const auto sector = static_cast<std::size_t>(
        std::min(3.0, std::floor((angle + 3.14159265) / 1.5708)));
    sector_rows[sector].push_back(i);
  }
  for (std::size_t m = 0; m < 4; ++m)
    sectors.shards[m] = rings.train.subset(sector_rows[m]);

  for (std::size_t l : {2, 3, 5, 10, 25, 50}) {
    core::AdmmParams params = bench::paper_params(60);
    params.landmarks = l;
    params.c = 10.0;
    params.rho = 1.0;
    const auto result = core::train_kernel_horizontal(
        sectors, svm::Kernel::rbf(0.5), params, &rings.test);
    std::printf("%-8s %5zu %9.1f%%\n", "rings", l,
                result.trace.final_accuracy() * 100.0);
  }
  return 0;
}
