// Reproduces paper Fig. 4(c) + 4(g): LINEAR SVM on VERTICALLY partitioned
// data — sharing-form ADMM, features randomly assigned to 4 learners.
#include "bench/bench_common.h"
#include "core/vertical.h"
#include "data/partition.h"

using namespace ppml;

int main() {
  const core::AdmmParams params = bench::paper_params();
  bench::print_header("Fig. 4(c)/(g)", "linear SVM, vertical partition",
                      params);

  for (const std::string& name : {"cancer", "higgs", "ocr"}) {
    const auto dataset = bench::make_bench_dataset(name);
    const auto partition =
        data::partition_vertically(dataset.split.train, 4, 7);
    const auto result =
        core::train_linear_vertical(partition, params, &dataset.split.test);
    bench::print_trace(dataset.name, result.trace);
    std::printf("# %s final: dz2=%.3e accuracy=%.4f\n", dataset.name.c_str(),
                result.trace.final_delta_sq(),
                result.trace.final_accuracy());
  }
  return 0;
}
